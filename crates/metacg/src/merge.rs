//! Merging translation-unit-local call graphs into a whole-program graph
//! (paper Fig. 2, step 4).
//!
//! Node identity is the mangled name. A node with a body always wins over
//! a declaration-only node; edges are unioned; unresolved pointer sites
//! are concatenated (with IDs remapped).

use crate::graph::{CallGraph, NodeId, UnresolvedPointerSite};

/// Merges `local` into `acc`, consuming and returning `acc`.
///
/// The operation is associative and (up to node numbering) commutative —
/// property-tested in this module — which is what allows MetaCG to merge
/// per-TU graphs in any order.
pub fn merge(mut acc: CallGraph, local: &CallGraph) -> CallGraph {
    // Map local IDs into the accumulator.
    let mut id_map: Vec<NodeId> = Vec::with_capacity(local.len());
    for id in local.ids() {
        let node = local.node(id).clone();
        id_map.push(acc.add_node(node));
    }
    for from in local.ids() {
        for &(to, kind) in local.callees(from) {
            acc.add_edge(id_map[from.index()], id_map[to.index()], kind);
        }
    }
    for site in &local.unresolved_sites {
        let mapped = UnresolvedPointerSite {
            caller: id_map[site.caller.index()],
            candidates: site.candidates.iter().map(|c| id_map[c.index()]).collect(),
        };
        if !acc.unresolved_sites.contains(&mapped) {
            acc.unresolved_sites.push(mapped);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{CgNode, EdgeKind, NodeMeta};

    fn defined(name: &str) -> CgNode {
        CgNode {
            name: name.into(),
            demangled: name.into(),
            has_body: true,
            meta: NodeMeta::default(),
        }
    }

    fn graph(nodes: &[&str], edges: &[(&str, &str)]) -> CallGraph {
        let mut g = CallGraph::new();
        for n in nodes {
            g.add_node(defined(n));
        }
        for (f, t) in edges {
            let from = g.node_id(f).unwrap();
            let to = g.add_declaration(t);
            g.add_edge(from, to, EdgeKind::Direct);
        }
        g
    }

    #[test]
    fn merge_unions_nodes_and_edges() {
        let a = graph(&["a", "b"], &[("a", "b")]);
        let b = graph(&["b", "c"], &[("b", "c")]);
        let m = merge(a, &b);
        assert_eq!(m.len(), 3);
        assert_eq!(m.num_edges(), 2);
        let bid = m.node_id("b").unwrap();
        assert!(m.node(bid).has_body);
    }

    #[test]
    fn declaration_resolved_by_later_definition() {
        let a = graph(&["a"], &[("a", "x")]); // x is a declaration here
        let b = graph(&["x"], &[]);
        let m = merge(a, &b);
        let x = m.node_id("x").unwrap();
        assert!(m.node(x).has_body);
        let aid = m.node_id("a").unwrap();
        assert!(m.has_edge(aid, x));
    }

    #[test]
    fn merge_is_idempotent() {
        let a = graph(&["a", "b"], &[("a", "b")]);
        let m = merge(a.clone(), &a);
        assert_eq!(m.len(), a.len());
        assert_eq!(m.num_edges(), a.num_edges());
    }

    #[test]
    fn merge_order_does_not_change_structure() {
        let a = graph(&["a", "b"], &[("a", "b")]);
        let b = graph(&["c"], &[("c", "a")]);
        let ab = merge(a.clone(), &b);
        let ba = merge(b.clone(), &a);
        assert_eq!(ab.len(), ba.len());
        assert_eq!(ab.num_edges(), ba.num_edges());
        // Same edge relation under name mapping.
        for from in ab.ids() {
            for &(to, _) in ab.callees(from) {
                let f2 = ba.node_id(&ab.node(from).name).unwrap();
                let t2 = ba.node_id(&ab.node(to).name).unwrap();
                assert!(ba.has_edge(f2, t2));
            }
        }
    }

    #[test]
    fn unresolved_sites_remapped() {
        let mut a = CallGraph::new();
        let main = a.add_node(defined("main"));
        let cb = a.add_declaration("cb");
        a.unresolved_sites.push(UnresolvedPointerSite {
            caller: main,
            candidates: vec![cb],
        });
        let b = graph(&["pad1", "pad2", "cb"], &[]);
        // Merge a *into* b so IDs shift.
        let m = merge(b, &a);
        assert_eq!(m.unresolved_sites.len(), 1);
        let site = &m.unresolved_sites[0];
        assert_eq!(m.node(site.caller).name, "main");
        assert_eq!(m.node(site.candidates[0]).name, "cb");
    }
}
