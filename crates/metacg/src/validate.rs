//! Profile-based call-graph validation.
//!
//! The static graph can miss edges at function-pointer sites MetaCG could
//! not resolve. The paper (§III-A) describes a utility that validates the
//! static call graph against a Score-P-generated profile and inserts the
//! missing edges automatically. This module reproduces that utility: it
//! takes measured caller→callee pairs and patches the graph.

use crate::graph::{CallGraph, EdgeKind};

/// A measured dynamic call edge, as extracted from a profile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileEdge {
    /// Caller function name.
    pub caller: String,
    /// Callee function name.
    pub callee: String,
}

/// Outcome of validating a graph against a profile.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Edges present in the profile and already in the graph.
    pub confirmed: usize,
    /// Edges inserted (marked [`EdgeKind::ProfileValidated`]).
    pub inserted: usize,
    /// Profile edges whose endpoints are unknown to the graph; the
    /// endpoints are added as declaration-only nodes and connected.
    pub unknown_endpoints: usize,
    /// Unresolved pointer sites that the profile confirmed (caller had a
    /// recorded unresolved site and the measured callee was one of its
    /// candidates).
    pub resolved_pointer_sites: usize,
}

/// Validates `g` against `profile`, inserting any missing edges.
///
/// Returns a report with confirmation/insertion counts — the same
/// information MetaCG's validation utility prints.
pub fn validate_with_profile(g: &mut CallGraph, profile: &[ProfileEdge]) -> ValidationReport {
    let mut report = ValidationReport::default();
    for edge in profile {
        let caller_known = g.node_id(&edge.caller).is_some();
        let callee_known = g.node_id(&edge.callee).is_some();
        if !caller_known || !callee_known {
            report.unknown_endpoints += 1;
        }
        let from = g.add_declaration(&edge.caller);
        let to = g.add_declaration(&edge.callee);
        if g.has_edge(from, to) {
            report.confirmed += 1;
            continue;
        }
        // Did this edge correspond to a recorded unresolved pointer site?
        let was_candidate = g
            .unresolved_sites
            .iter()
            .any(|s| s.caller == from && s.candidates.contains(&to));
        if was_candidate {
            report.resolved_pointer_sites += 1;
        }
        g.add_edge(from, to, EdgeKind::ProfileValidated);
        report.inserted += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{CgNode, NodeMeta, UnresolvedPointerSite};

    fn node(name: &str) -> CgNode {
        CgNode {
            name: name.into(),
            demangled: name.into(),
            has_body: true,
            meta: NodeMeta::default(),
        }
    }

    fn edge(caller: &str, callee: &str) -> ProfileEdge {
        ProfileEdge {
            caller: caller.into(),
            callee: callee.into(),
        }
    }

    #[test]
    fn confirms_existing_edges() {
        let mut g = CallGraph::new();
        let a = g.add_node(node("a"));
        let b = g.add_node(node("b"));
        g.add_edge(a, b, EdgeKind::Direct);
        let r = validate_with_profile(&mut g, &[edge("a", "b")]);
        assert_eq!(r.confirmed, 1);
        assert_eq!(r.inserted, 0);
    }

    #[test]
    fn inserts_missing_edges_with_profile_kind() {
        let mut g = CallGraph::new();
        g.add_node(node("a"));
        g.add_node(node("b"));
        let r = validate_with_profile(&mut g, &[edge("a", "b")]);
        assert_eq!(r.inserted, 1);
        let a = g.node_id("a").unwrap();
        let b = g.node_id("b").unwrap();
        assert_eq!(g.callees(a)[0], (b, EdgeKind::ProfileValidated));
    }

    #[test]
    fn resolves_recorded_pointer_sites() {
        let mut g = CallGraph::new();
        let main = g.add_node(node("main"));
        let cb = g.add_node(node("cb"));
        g.unresolved_sites.push(UnresolvedPointerSite {
            caller: main,
            candidates: vec![cb],
        });
        let r = validate_with_profile(&mut g, &[edge("main", "cb")]);
        assert_eq!(r.resolved_pointer_sites, 1);
        assert!(g.has_edge(main, cb));
    }

    #[test]
    fn unknown_endpoints_are_added_as_declarations() {
        let mut g = CallGraph::new();
        g.add_node(node("a"));
        let r = validate_with_profile(&mut g, &[edge("a", "libm_sin")]);
        assert_eq!(r.unknown_endpoints, 1);
        assert_eq!(r.inserted, 1);
        let ext = g.node_id("libm_sin").unwrap();
        assert!(!g.node(ext).has_body);
    }

    #[test]
    fn duplicate_profile_edges_confirm_after_first_insert() {
        let mut g = CallGraph::new();
        g.add_node(node("a"));
        g.add_node(node("b"));
        let r = validate_with_profile(&mut g, &[edge("a", "b"), edge("a", "b")]);
        assert_eq!(r.inserted, 1);
        assert_eq!(r.confirmed, 1);
    }
}
