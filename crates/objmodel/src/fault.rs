//! Deterministic fault injection for the simulated runtime linker.
//!
//! Real DSO churn fails in ways a static loader never exercises: `dlopen`
//! hits `ENOMEM`, relocation processing aborts half-way, `mprotect`
//! refuses a page flip mid-repatch, an unload races a patch batch. A
//! [`FaultPlan`] scripts those failures *deterministically* — either
//! hand-written or expanded from a seed — so every failure a scenario
//! observes is reproducible bit-for-bit from `(seed, script)` alone.
//!
//! The plan is split across the layers that own each fault site:
//! `dlopen`-class faults fire inside [`crate::Process::dlopen`] (counted
//! per `dlopen` call), `mprotect` faults fire inside
//! [`crate::AddressSpace::mprotect`] (counted per syscall), and
//! [`FaultKind::UnloadRace`] is handed to the session layer, which
//! unloads the target between policy evaluation and repatch.

use std::fmt;

/// One scripted fault class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// `dlopen` fails before mapping anything (simulated `ENOMEM`).
    DlopenOom,
    /// `dlopen` fails during relocation processing, after the image was
    /// read but before it was mapped.
    Relocation,
    /// `dlopen` maps the code segment, then fails; the mapping must be
    /// rolled back (no leaked region, the slot stays vacant).
    PartialLoad,
    /// The next scheduled `mprotect` call on the address space fails
    /// (simulated kernel refusal mid-patch).
    MprotectFail,
    /// An object is unloaded between an adaptation decision and the
    /// repatch that applies it (driven by the session layer).
    UnloadRace,
}

impl FaultKind {
    /// Stable machine-readable tag (telemetry labels, log lines, test
    /// oracles). Never reworded once shipped.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultKind::DlopenOom => "dlopen_oom",
            FaultKind::Relocation => "relocation",
            FaultKind::PartialLoad => "partial_load",
            FaultKind::MprotectFail => "mprotect_fail",
            FaultKind::UnloadRace => "unload_race",
        }
    }

    /// All fault kinds, in a fixed order (seed expansion cycles this).
    pub const ALL: [FaultKind; 5] = [
        FaultKind::DlopenOom,
        FaultKind::Relocation,
        FaultKind::PartialLoad,
        FaultKind::MprotectFail,
        FaultKind::UnloadRace,
    ];
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.kind())
    }
}

/// One scripted fault: fire `kind` when its site's operation counter
/// reaches `at` (0-based: `at == 0` faults the next operation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScriptedFault {
    /// Operation index at the fault's site (`dlopen` calls for the
    /// dlopen-class kinds, `mprotect` calls for [`FaultKind::MprotectFail`],
    /// session lifecycle ops for [`FaultKind::UnloadRace`]).
    pub at: u64,
    /// What fails.
    pub kind: FaultKind,
}

/// A fault that actually fired, kept for auditability: tests assert each
/// scripted fault fires exactly once, at its scripted point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FiredFault {
    /// The operation index it fired at.
    pub at: u64,
    /// What failed.
    pub kind: FaultKind,
    /// The object (or site) the fault hit.
    pub target: String,
}

/// A deterministic, script-driven fault schedule.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<ScriptedFault>,
}

impl FaultPlan {
    /// An empty plan (nothing fails).
    pub fn new() -> Self {
        Self::default()
    }

    /// A hand-written script.
    pub fn scripted(faults: Vec<ScriptedFault>) -> Self {
        Self { faults }
    }

    /// Expands `seed` into `count` faults spread over operation indices
    /// `0..ops` with a splitmix64-style generator: the same seed always
    /// yields the same script, so a failing fuzz case replays exactly.
    pub fn from_seed(seed: u64, ops: u64, count: usize) -> Self {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let faults = (0..count)
            .map(|_| ScriptedFault {
                at: if ops == 0 { 0 } else { next() % ops },
                kind: FaultKind::ALL[(next() % FaultKind::ALL.len() as u64) as usize],
            })
            .collect();
        Self { faults }
    }

    /// Adds one fault to the script.
    pub fn push(&mut self, at: u64, kind: FaultKind) {
        self.faults.push(ScriptedFault { at, kind });
    }

    /// The full script, in insertion order.
    pub fn faults(&self) -> &[ScriptedFault] {
        &self.faults
    }

    /// Removes and returns the scripted fault of one of `kinds` whose
    /// index matches `at`, if any — the "does this operation fail?" check
    /// each fault site performs. Each scripted fault is consumed (fires
    /// at most once).
    pub fn take_matching(&mut self, at: u64, kinds: &[FaultKind]) -> Option<ScriptedFault> {
        let pos = self
            .faults
            .iter()
            .position(|f| f.at == at && kinds.contains(&f.kind))?;
        Some(self.faults.remove(pos))
    }

    /// Scripted faults of the given kinds, without consuming them (the
    /// session layer uses this to schedule [`FaultKind::UnloadRace`]).
    pub fn of_kinds(&self, kinds: &[FaultKind]) -> Vec<ScriptedFault> {
        self.faults
            .iter()
            .filter(|f| kinds.contains(&f.kind))
            .copied()
            .collect()
    }

    /// True when no faults remain to fire.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::from_seed(42, 100, 8);
        let b = FaultPlan::from_seed(42, 100, 8);
        assert_eq!(a.faults(), b.faults());
        let c = FaultPlan::from_seed(43, 100, 8);
        assert_ne!(a.faults(), c.faults());
    }

    #[test]
    fn take_matching_consumes_exactly_once() {
        let mut p = FaultPlan::scripted(vec![ScriptedFault {
            at: 2,
            kind: FaultKind::DlopenOom,
        }]);
        assert!(p.take_matching(1, &[FaultKind::DlopenOom]).is_none());
        assert!(p.take_matching(2, &[FaultKind::MprotectFail]).is_none());
        let f = p.take_matching(2, &[FaultKind::DlopenOom]).unwrap();
        assert_eq!(f.kind, FaultKind::DlopenOom);
        assert!(p.take_matching(2, &[FaultKind::DlopenOom]).is_none());
        assert!(p.is_empty());
    }

    #[test]
    fn kind_tags_are_stable() {
        let tags: Vec<&str> = FaultKind::ALL.iter().map(|k| k.kind()).collect();
        assert_eq!(
            tags,
            [
                "dlopen_oom",
                "relocation",
                "partial_load",
                "mprotect_fail",
                "unload_race"
            ]
        );
    }
}
