//! Paged virtual address space with `mprotect` semantics.
//!
//! XRay's patching first marks the pages containing sleds writable via
//! `mprotect` (enabling copy-on-write), rewrites the sleds, and restores
//! the protection (paper §V-A). This module models exactly that: mapped
//! regions with page-granular permissions, permission-checked writes,
//! and syscall accounting so benches can report patching cost drivers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Page size of the simulated architecture.
pub const PAGE_SIZE: u64 = 4096;

/// Page permissions (r/w/x).
#[derive(Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PagePerms {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl PagePerms {
    /// `r-x` — the normal protection of code pages.
    pub const RX: PagePerms = PagePerms {
        r: true,
        w: false,
        x: true,
    };
    /// `rwx` — code pages while being patched.
    pub const RWX: PagePerms = PagePerms {
        r: true,
        w: true,
        x: true,
    };
    /// `rw-` — data pages.
    pub const RW: PagePerms = PagePerms {
        r: true,
        w: true,
        x: false,
    };
}

impl fmt::Debug for PagePerms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.r { 'r' } else { '-' },
            if self.w { 'w' } else { '-' },
            if self.x { 'x' } else { '-' }
        )
    }
}

/// Errors from address-space operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemError {
    /// Address range is not backed by a mapping.
    Unmapped {
        /// Faulting address.
        addr: u64,
    },
    /// `mprotect` called with a non-page-aligned base.
    Misaligned {
        /// Offending address.
        addr: u64,
    },
    /// Write attempted to a non-writable page (SIGSEGV equivalent).
    ProtectionFault {
        /// Faulting address.
        addr: u64,
    },
    /// Mapping would overlap an existing region.
    Overlap {
        /// Requested base.
        addr: u64,
    },
    /// A scripted fault plan failed this `mprotect` call (simulated
    /// kernel refusal, e.g. `ENOMEM` splitting a VMA).
    InjectedFault {
        /// The `mprotect` call index the fault fired at.
        index: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped { addr } => write!(f, "unmapped address {addr:#x}"),
            MemError::Misaligned { addr } => write!(f, "misaligned address {addr:#x}"),
            MemError::ProtectionFault { addr } => {
                write!(f, "write to protected page at {addr:#x}")
            }
            MemError::Overlap { addr } => write!(f, "mapping overlap at {addr:#x}"),
            MemError::InjectedFault { index } => {
                write!(f, "injected mprotect fault at call #{index}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// A mapped region (one object's code segment, typically).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Region {
    /// Base address (page-aligned).
    pub base: u64,
    /// Length in bytes (rounded up to pages).
    pub len: u64,
    /// Human-readable backing path (object file name).
    pub path: String,
    /// Per-page permissions.
    perms: Vec<PagePerms>,
}

impl Region {
    /// Number of pages.
    pub fn num_pages(&self) -> u64 {
        self.len / PAGE_SIZE
    }

    /// Permissions of the page containing `addr`.
    pub fn perms_at(&self, addr: u64) -> PagePerms {
        self.perms[((addr - self.base) / PAGE_SIZE) as usize]
    }
}

/// Syscall/permission statistics, exposed for the overhead model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Number of `mprotect` calls issued.
    pub mprotect_calls: u64,
    /// Pages whose protection was changed.
    pub pages_reprotected: u64,
    /// Bytes written through checked writes (sled patches).
    pub bytes_written: u64,
}

/// The process address space.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AddressSpace {
    regions: Vec<Region>,
    /// Accounting for the overhead model.
    pub stats: MemStats,
    /// Scheduled `mprotect` fault injections: call indices (compared
    /// against `stats.mprotect_calls` at entry) that fail typed.
    mprotect_fail_at: Vec<u64>,
    /// Call indices at which injected faults actually fired, for audit.
    mprotect_faults_fired: Vec<u64>,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps `len` bytes at `base` with uniform `perms`.
    pub fn map(
        &mut self,
        base: u64,
        len: u64,
        perms: PagePerms,
        path: &str,
    ) -> Result<(), MemError> {
        if !base.is_multiple_of(PAGE_SIZE) {
            return Err(MemError::Misaligned { addr: base });
        }
        let len = len.div_ceil(PAGE_SIZE).max(1) * PAGE_SIZE;
        if self
            .regions
            .iter()
            .any(|r| base < r.base + r.len && r.base < base + len)
        {
            return Err(MemError::Overlap { addr: base });
        }
        self.regions.push(Region {
            base,
            len,
            path: path.to_string(),
            perms: vec![perms; (len / PAGE_SIZE) as usize],
        });
        Ok(())
    }

    /// Unmaps the region based at `base`.
    pub fn unmap(&mut self, base: u64) -> Result<(), MemError> {
        let idx = self
            .regions
            .iter()
            .position(|r| r.base == base)
            .ok_or(MemError::Unmapped { addr: base })?;
        self.regions.remove(idx);
        Ok(())
    }

    /// Changes protection on `[addr, addr+len)`, page-granular, like the
    /// `mprotect(2)` call the XRay patcher issues.
    pub fn mprotect(&mut self, addr: u64, len: u64, perms: PagePerms) -> Result<(), MemError> {
        let index = self.stats.mprotect_calls;
        if let Some(pos) = self.mprotect_fail_at.iter().position(|&i| i == index) {
            // The failed syscall still counts as a syscall.
            self.mprotect_fail_at.remove(pos);
            self.mprotect_faults_fired.push(index);
            self.stats.mprotect_calls += 1;
            return Err(MemError::InjectedFault { index });
        }
        if !addr.is_multiple_of(PAGE_SIZE) {
            return Err(MemError::Misaligned { addr });
        }
        let end = addr + len.div_ceil(PAGE_SIZE).max(1) * PAGE_SIZE;
        let region = self
            .regions
            .iter_mut()
            .find(|r| addr >= r.base && end <= r.base + r.len)
            .ok_or(MemError::Unmapped { addr })?;
        let first = ((addr - region.base) / PAGE_SIZE) as usize;
        let last = ((end - region.base) / PAGE_SIZE) as usize;
        let mut changed = 0;
        for p in &mut region.perms[first..last] {
            if *p != perms {
                changed += 1;
                *p = perms;
            }
        }
        self.stats.mprotect_calls += 1;
        self.stats.pages_reprotected += changed;
        Ok(())
    }

    /// Permission-checked write of `len` bytes at `addr` (a sled patch).
    /// Fails with [`MemError::ProtectionFault`] when the page is not
    /// writable — the fault a patcher hits if it forgets `mprotect`.
    pub fn checked_write(&mut self, addr: u64, len: u64) -> Result<(), MemError> {
        let region = self
            .regions
            .iter()
            .find(|r| addr >= r.base && addr + len <= r.base + r.len)
            .ok_or(MemError::Unmapped { addr })?;
        // Each touched page must be writable.
        let mut a = addr;
        while a < addr + len {
            if !region.perms_at(a).w {
                return Err(MemError::ProtectionFault { addr: a });
            }
            a = (a / PAGE_SIZE + 1) * PAGE_SIZE;
        }
        self.stats.bytes_written += len;
        Ok(())
    }

    /// Schedules an injected failure of the `mprotect` call whose index
    /// (counting from process start) is `index`. Fires at most once.
    pub fn schedule_mprotect_fault(&mut self, index: u64) {
        self.mprotect_fail_at.push(index);
    }

    /// Call indices at which injected `mprotect` faults fired.
    pub fn mprotect_faults_fired(&self) -> &[u64] {
        &self.mprotect_faults_fired
    }

    /// Region containing `addr`.
    pub fn region_of(&self, addr: u64) -> Option<&Region> {
        self.regions
            .iter()
            .find(|r| addr >= r.base && addr < r.base + r.len)
    }

    /// All regions, ascending by base.
    pub fn regions(&self) -> Vec<&Region> {
        let mut v: Vec<&Region> = self.regions.iter().collect();
        v.sort_by_key(|r| r.base);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_rounds_to_pages_and_rejects_overlap() {
        let mut a = AddressSpace::new();
        a.map(0x1000, 100, PagePerms::RX, "x").unwrap();
        assert_eq!(a.region_of(0x1000).unwrap().len, PAGE_SIZE);
        assert_eq!(
            a.map(0x1000, 1, PagePerms::RX, "y"),
            Err(MemError::Overlap { addr: 0x1000 })
        );
    }

    #[test]
    fn misaligned_map_rejected() {
        let mut a = AddressSpace::new();
        assert_eq!(
            a.map(0x1001, 10, PagePerms::RX, "x"),
            Err(MemError::Misaligned { addr: 0x1001 })
        );
    }

    #[test]
    fn write_to_rx_page_faults_until_mprotect() {
        let mut a = AddressSpace::new();
        a.map(0x1000, 2 * PAGE_SIZE, PagePerms::RX, "code").unwrap();
        assert_eq!(
            a.checked_write(0x1010, 8),
            Err(MemError::ProtectionFault { addr: 0x1010 })
        );
        a.mprotect(0x1000, PAGE_SIZE, PagePerms::RWX).unwrap();
        assert!(a.checked_write(0x1010, 8).is_ok());
        // Second page still protected.
        assert!(matches!(
            a.checked_write(0x1000 + PAGE_SIZE, 8),
            Err(MemError::ProtectionFault { .. })
        ));
    }

    #[test]
    fn write_spanning_pages_requires_both_writable() {
        let mut a = AddressSpace::new();
        a.map(0x1000, 2 * PAGE_SIZE, PagePerms::RX, "code").unwrap();
        a.mprotect(0x1000, PAGE_SIZE, PagePerms::RWX).unwrap();
        let end_of_first = 0x1000 + PAGE_SIZE - 4;
        assert!(matches!(
            a.checked_write(end_of_first, 8),
            Err(MemError::ProtectionFault { .. })
        ));
    }

    #[test]
    fn stats_track_syscalls_and_writes() {
        let mut a = AddressSpace::new();
        a.map(0x1000, 4 * PAGE_SIZE, PagePerms::RX, "code").unwrap();
        a.mprotect(0x1000, 2 * PAGE_SIZE, PagePerms::RWX).unwrap();
        a.checked_write(0x1000, 16).unwrap();
        a.mprotect(0x1000, 2 * PAGE_SIZE, PagePerms::RX).unwrap();
        assert_eq!(a.stats.mprotect_calls, 2);
        assert_eq!(a.stats.pages_reprotected, 4);
        assert_eq!(a.stats.bytes_written, 16);
    }

    #[test]
    fn unmap_removes_region() {
        let mut a = AddressSpace::new();
        a.map(0x1000, PAGE_SIZE, PagePerms::RX, "x").unwrap();
        a.unmap(0x1000).unwrap();
        assert!(a.region_of(0x1000).is_none());
        assert_eq!(a.unmap(0x1000), Err(MemError::Unmapped { addr: 0x1000 }));
    }

    #[test]
    fn scheduled_mprotect_fault_fires_exactly_once() {
        let mut a = AddressSpace::new();
        a.map(0x1000, 2 * PAGE_SIZE, PagePerms::RX, "code").unwrap();
        a.mprotect(0x1000, PAGE_SIZE, PagePerms::RWX).unwrap();
        a.schedule_mprotect_fault(1);
        assert_eq!(
            a.mprotect(0x1000, PAGE_SIZE, PagePerms::RX),
            Err(MemError::InjectedFault { index: 1 })
        );
        // The failed call still counted; the retry (call #2) succeeds.
        assert_eq!(a.stats.mprotect_calls, 2);
        a.mprotect(0x1000, PAGE_SIZE, PagePerms::RX).unwrap();
        assert_eq!(a.mprotect_faults_fired(), &[1]);
    }

    #[test]
    fn mprotect_outside_region_fails() {
        let mut a = AddressSpace::new();
        assert!(matches!(
            a.mprotect(0x5000, PAGE_SIZE, PagePerms::RWX),
            Err(MemError::Unmapped { .. })
        ));
    }
}
