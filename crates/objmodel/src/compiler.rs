//! The simulated compiler: lowers a [`SourceProgram`] to a [`Binary`].
//!
//! The single most important behaviour reproduced here is the paper's
//! §V-E observation: *the compiler's inlining decisions do not coincide
//! with the `inline` keyword the call graph records*. Concretely:
//!
//! * small functions are **auto-inlined** at every direct call site even
//!   without the keyword; their bodies and symbols disappear from the
//!   binary entirely (think discarded weak template instantiations).
//!   Selecting such a function yields no profile data — this is what
//!   CaPI's inlining compensation repairs.
//! * `inline`-keyword functions are folded into their callers too, but a
//!   COMDAT out-of-line copy with a symbol is retained — the paper's
//!   caveat that "symbols may be retained after inlining", which is why
//!   symbol presence is only an approximation of the inline set.
//! * virtual, address-taken, recursive, `main` and MPI functions are
//!   never inlined.
//!
//! Inlining is *transitively folded*: an inlined callee's residual call
//! sites are lifted into the caller with multiplied trip counts, and its
//! body cost is merged, so the executor sees exactly the calls a real
//! optimized binary would make.

use crate::object::{Binary, CompiledCallSite, CompiledFunction, DispatchKind, Object, ObjectKind};
use crate::symbols::{SymKind, Symbol, SymbolTable};
use capi_appmodel::{CalleeRef, FunctionKind, LinkTarget, SourceFunction, SourceProgram, Sym};
use std::collections::HashMap;
use std::fmt;

/// Optimization level; governs auto-inlining aggressiveness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptLevel {
    /// No inlining at all.
    O0,
    /// Default optimization (the paper's OpenFOAM builds).
    O2,
    /// Aggressive optimization (the paper's LULESH builds).
    O3,
}

/// Compiler configuration.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Optimization level.
    pub opt_level: OptLevel,
    /// `inline`-keyword functions up to this many statements are folded
    /// into callers (an out-of-line COMDAT copy is still emitted).
    pub inline_keyword_max_statements: u32,
    /// Functions up to this many statements are auto-inlined and fully
    /// dropped from the binary, keyword or not.
    pub auto_inline_max_statements: u32,
    /// Functions the user marked *critical*: never inlined, so their
    /// instrumentation locations survive compilation — the paper's
    /// §VII-C suggested improvement ("an option to mark instrumentation
    /// locations before inlining for a sub-set of selected functions
    /// that are deemed critical by the user").
    pub never_inline: std::collections::HashSet<String>,
}

impl CompileOptions {
    /// `-O0`: no inlining.
    pub fn o0() -> Self {
        Self {
            opt_level: OptLevel::O0,
            inline_keyword_max_statements: 0,
            auto_inline_max_statements: 0,
            never_inline: Default::default(),
        }
    }

    /// `-O2` defaults (OpenFOAM's build flags in the paper).
    pub fn o2() -> Self {
        Self {
            opt_level: OptLevel::O2,
            inline_keyword_max_statements: 40,
            auto_inline_max_statements: 4,
            never_inline: Default::default(),
        }
    }

    /// `-O3` defaults (LULESH's build flags in the paper).
    pub fn o3() -> Self {
        Self {
            opt_level: OptLevel::O3,
            inline_keyword_max_statements: 60,
            auto_inline_max_statements: 8,
            never_inline: Default::default(),
        }
    }
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self::o2()
    }
}

/// Compilation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The program defines no `main`.
    NoEntryPoint,
    /// A call site references an undefined function (programs should be
    /// validated before compilation; this is a backstop).
    UndefinedReference(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NoEntryPoint => write!(f, "no entry point (main)"),
            CompileError::UndefinedReference(n) => write!(f, "undefined reference to `{n}`"),
        }
    }
}

impl std::error::Error for CompileError {}

/// The folded (post-inlining) representation of one function.
#[derive(Clone, Debug, Default)]
struct Folded {
    cost: u64,
    instructions: u64,
    loop_depth: u32,
    sites: Vec<CompiledCallSite>,
    inlined: Vec<String>,
}

/// Compiles `program` into a [`Binary`].
pub fn compile(program: &SourceProgram, opts: &CompileOptions) -> Result<Binary, CompileError> {
    program.entry().ok_or(CompileError::NoEntryPoint)?;

    // Dense indexing over all functions.
    let funcs: Vec<&SourceFunction> = program.iter_functions().collect();
    let index_of: HashMap<Sym, usize> =
        funcs.iter().enumerate().map(|(i, f)| (f.name, i)).collect();
    for f in &funcs {
        for site in &f.call_sites {
            for target in all_targets(&site.callee) {
                if !index_of.contains_key(&target) {
                    return Err(CompileError::UndefinedReference(
                        program.interner.resolve(target).to_string(),
                    ));
                }
            }
        }
    }

    let recursive = find_recursive(&funcs, &index_of);
    // A function can only disappear through inlining if something calls
    // it directly; an uncalled tiny function keeps its (dead) body.
    let mut called_directly = vec![false; funcs.len()];
    for f in &funcs {
        for site in &f.call_sites {
            if let CalleeRef::Direct(t) = &site.callee {
                called_directly[index_of[t]] = true;
            }
        }
    }
    let inline_class: Vec<InlineClass> = funcs
        .iter()
        .enumerate()
        .map(|(i, f)| {
            if opts.never_inline.contains(program.interner.resolve(f.name)) {
                return InlineClass::Emitted;
            }
            match classify(f, recursive[i], opts) {
                InlineClass::FoldedDropSymbol if !called_directly[i] => InlineClass::Emitted,
                c => c,
            }
        })
        .collect();

    // Fold inlined callees transitively, in dependency order.
    let mut folded: Vec<Option<Folded>> = vec![None; funcs.len()];
    for i in 0..funcs.len() {
        fold(i, program, &funcs, &index_of, &inline_class, &mut folded);
    }

    // Partition emitted functions by object.
    let exe_name = program.name.clone();
    let mut per_object: HashMap<String, Vec<CompiledFunction>> = HashMap::new();
    let mut object_order: Vec<(String, ObjectKind)> =
        vec![(exe_name.clone(), ObjectKind::Executable)];

    for (unit, f) in program.iter_with_units() {
        let i = index_of[&f.name];
        if inline_class[i] == InlineClass::FoldedDropSymbol {
            continue; // body and symbol dropped
        }
        let object_name = unit.target.object_name(&program.name).to_string();
        if let LinkTarget::Dso(dso) = &unit.target {
            if !object_order.iter().any(|(n, _)| n == dso) {
                object_order.push((dso.clone(), ObjectKind::SharedObject));
            }
        }
        let fd = folded[i].as_ref().expect("folded above").clone();
        let name = program.interner.resolve(f.name).to_string();
        per_object
            .entry(object_name)
            .or_default()
            .push(CompiledFunction {
                name,
                demangled: f.demangled.clone(),
                offset: 0, // assigned during layout
                size: 0,
                instructions: fd.instructions.min(u32::MAX as u64) as u32,
                loop_depth: fd.loop_depth,
                visibility: f.attrs.visibility,
                kind: f.attrs.kind,
                body_cost_ns: fd.cost,
                imbalance_pct: f.behavior.imbalance_pct,
                mpi: f.behavior.mpi,
                call_sites: fd.sites.clone(),
                inlined: fd.inlined.clone(),
                return_sites: 1 + (f.attrs.statements / 24).min(3),
            });
    }

    let mut objects = Vec::new();
    for (name, kind) in object_order {
        let fns = per_object.remove(&name).unwrap_or_default();
        objects.push(layout(name, kind, fns));
    }
    let executable = objects.remove(0);
    Ok(Binary {
        executable,
        dsos: objects,
    })
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum InlineClass {
    /// Emitted normally; calls to it stay calls.
    Emitted,
    /// Folded into callers; COMDAT copy with symbol retained.
    FoldedKeepSymbol,
    /// Folded into callers; body and symbol dropped.
    FoldedDropSymbol,
}

fn classify(f: &SourceFunction, recursive: bool, opts: &CompileOptions) -> InlineClass {
    if opts.opt_level == OptLevel::O0 {
        return InlineClass::Emitted;
    }
    let a = &f.attrs;
    let never = recursive
        || a.is_virtual
        || a.address_taken
        || matches!(
            a.kind,
            FunctionKind::Main | FunctionKind::MpiStub | FunctionKind::StaticInitializer
        );
    if never {
        return InlineClass::Emitted;
    }
    if a.statements <= opts.auto_inline_max_statements {
        // Tiny bodies vanish entirely, keyword or not.
        return InlineClass::FoldedDropSymbol;
    }
    if a.inline_keyword && a.statements <= opts.inline_keyword_max_statements {
        return InlineClass::FoldedKeepSymbol;
    }
    InlineClass::Emitted
}

fn all_targets(c: &CalleeRef) -> Vec<Sym> {
    match c {
        CalleeRef::Direct(s) => vec![*s],
        CalleeRef::Virtual { overrides, .. } => overrides.clone(),
        CalleeRef::Pointer { candidates, .. } => candidates.clone(),
    }
}

/// Marks functions participating in direct-call recursion (self loops or
/// larger cycles); such functions are never inlined, which also makes the
/// inlined-callee relation acyclic.
fn find_recursive(funcs: &[&SourceFunction], index_of: &HashMap<Sym, usize>) -> Vec<bool> {
    const UNVISITED: u32 = u32::MAX;
    let n = funcs.len();
    let direct: Vec<Vec<usize>> = funcs
        .iter()
        .map(|f| {
            f.call_sites
                .iter()
                .filter_map(|s| match &s.callee {
                    CalleeRef::Direct(t) => Some(index_of[t]),
                    _ => None,
                })
                .collect()
        })
        .collect();

    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next = 0u32;
    let mut recursive = vec![false; n];
    let mut work: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        work.push((root, 0));
        while let Some(&mut (v, ref mut ci)) = work.last_mut() {
            if *ci == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < direct[v].len() {
                let w = direct[v][*ci];
                *ci += 1;
                if index[w] == UNVISITED {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&mut (p, _)) = work.last_mut() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let cyclic = comp.len() > 1 || direct[comp[0]].contains(&comp[0]); // self loop
                    if cyclic {
                        for w in comp {
                            recursive[w] = true;
                        }
                    }
                }
            }
        }
    }
    recursive
}

/// Computes the folded representation of function `i` (iterative, memoized).
fn fold(
    start: usize,
    program: &SourceProgram,
    funcs: &[&SourceFunction],
    index_of: &HashMap<Sym, usize>,
    class: &[InlineClass],
    folded: &mut [Option<Folded>],
) {
    // Post-order DFS over inlined direct callees.
    let mut stack = vec![(start, false)];
    while let Some((i, children_done)) = stack.pop() {
        if folded[i].is_some() {
            continue;
        }
        if !children_done {
            stack.push((i, true));
            for site in &funcs[i].call_sites {
                if let CalleeRef::Direct(t) = &site.callee {
                    let ti = index_of[t];
                    if class[ti] != InlineClass::Emitted && folded[ti].is_none() {
                        stack.push((ti, false));
                    }
                }
            }
            continue;
        }
        let f = funcs[i];
        let mut out = Folded {
            cost: f.behavior.body_cost_ns,
            instructions: f.attrs.instructions as u64,
            loop_depth: f.attrs.loop_depth,
            sites: Vec::new(),
            inlined: Vec::new(),
        };
        for site in &f.call_sites {
            match &site.callee {
                CalleeRef::Direct(t) => {
                    let ti = index_of[t];
                    if class[ti] != InlineClass::Emitted {
                        let sub = folded[ti].as_ref().expect("post-order").clone();
                        out.cost = out.cost.saturating_add(site.trips.saturating_mul(sub.cost));
                        out.instructions = out.instructions.saturating_add(sub.instructions);
                        out.loop_depth = out.loop_depth.max(sub.loop_depth);
                        for s in &sub.sites {
                            out.sites.push(CompiledCallSite {
                                targets: s.targets.clone(),
                                dispatch: s.dispatch,
                                trips: s.trips.saturating_mul(site.trips),
                            });
                        }
                        out.inlined.push(program.interner.resolve(*t).to_string());
                        out.inlined.extend(sub.inlined.iter().cloned());
                    } else {
                        out.sites.push(CompiledCallSite {
                            targets: vec![program.interner.resolve(*t).to_string()],
                            dispatch: DispatchKind::Direct,
                            trips: site.trips,
                        });
                    }
                }
                CalleeRef::Virtual { overrides, .. } => {
                    out.sites.push(CompiledCallSite {
                        targets: overrides
                            .iter()
                            .map(|o| program.interner.resolve(*o).to_string())
                            .collect(),
                        dispatch: DispatchKind::Virtual,
                        trips: site.trips,
                    });
                }
                CalleeRef::Pointer { candidates, .. } => {
                    out.sites.push(CompiledCallSite {
                        targets: candidates
                            .iter()
                            .map(|c| program.interner.resolve(*c).to_string())
                            .collect(),
                        dispatch: DispatchKind::Pointer,
                        trips: site.trips,
                    });
                }
            }
        }
        folded[i] = Some(out);
    }
}

/// Assigns offsets/sizes and builds the symbol table.
fn layout(name: String, kind: ObjectKind, mut fns: Vec<CompiledFunction>) -> Object {
    const BYTES_PER_INSTRUCTION: u64 = 4;
    const ALIGN: u64 = 16;
    let mut offset = 0u64;
    let mut symtab = SymbolTable::new();
    for f in &mut fns {
        f.offset = offset;
        f.size = (f.instructions as u64 * BYTES_PER_INSTRUCTION).max(ALIGN) as u32;
        offset += f.size as u64;
        offset = offset.div_ceil(ALIGN) * ALIGN;
        symtab.push(Symbol {
            name: f.name.clone(),
            offset: f.offset,
            size: f.size,
            visibility: f.visibility,
            kind: if f.kind == FunctionKind::StaticInitializer {
                SymKind::StaticInit
            } else {
                SymKind::Func
            },
        });
    }
    Object::new(name, kind, fns, symtab)
}

/// Estimates a full (re)compilation time in virtual nanoseconds.
///
/// Calibrated so an OpenFOAM-scale program lands near the paper's "approx.
/// 50 minutes for a full recompilation" (§VII-A) and LULESH near a couple
/// of minutes. Used by the refinement-workflow turnaround comparison.
pub fn estimate_compile_time(program: &SourceProgram, opts: &CompileOptions) -> u64 {
    const TU_BASE_NS: u64 = 1_200_000_000; // 1.2 s toolchain overhead per TU
    const PER_STATEMENT_NS: u64 = 2_200_000; // 2.2 ms per statement
    let opt_factor = match opts.opt_level {
        OptLevel::O0 => 40,
        OptLevel::O2 => 100,
        OptLevel::O3 => 130,
    };
    let mut total = 0u64;
    for unit in &program.units {
        let stmts: u64 = unit
            .functions
            .iter()
            .map(|f| f.attrs.statements as u64)
            .sum();
        total += TU_BASE_NS + stmts * PER_STATEMENT_NS * opt_factor / 100;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use capi_appmodel::{MpiCall, ProgramBuilder};

    fn compile_src(build: impl FnOnce(&mut ProgramBuilder)) -> Binary {
        let mut b = ProgramBuilder::new("app");
        build(&mut b);
        let p = b.build().expect("valid test program");
        compile(&p, &CompileOptions::o2()).expect("compiles")
    }

    #[test]
    fn tiny_functions_are_auto_inlined_and_dropped() {
        let bin = compile_src(|b| {
            b.unit("m.cc", LinkTarget::Executable);
            b.function("main")
                .main()
                .statements(50)
                .calls("tiny", 10)
                .finish();
            b.function("tiny").statements(2).cost(7).finish();
        });
        assert!(!bin.has_symbol("tiny"));
        let main = bin
            .executable
            .function(bin.executable.function_index("main").unwrap());
        assert!(main.inlined.contains(&"tiny".to_string()));
        assert!(main.call_sites.is_empty());
        // Cost folded: default 100 + 10 * 7.
        assert_eq!(main.body_cost_ns, 100 + 70);
    }

    #[test]
    fn keyword_inlined_keeps_comdat_symbol() {
        let bin = compile_src(|b| {
            b.unit("m.cc", LinkTarget::Executable);
            b.function("main")
                .main()
                .statements(50)
                .calls("helper", 2)
                .finish();
            b.function("helper")
                .statements(20)
                .inline_keyword()
                .cost(30)
                .finish();
        });
        assert!(bin.has_symbol("helper"), "COMDAT copy retained");
        let main = bin
            .executable
            .function(bin.executable.function_index("main").unwrap());
        assert!(main.inlined.contains(&"helper".to_string()));
        assert!(main.call_sites.is_empty());
    }

    #[test]
    fn transitive_fold_lifts_residual_sites() {
        let bin = compile_src(|b| {
            b.unit("m.cc", LinkTarget::Executable);
            b.function("main")
                .main()
                .statements(50)
                .calls("mid", 3)
                .finish();
            // mid is tiny: inlined; its call to big survives, multiplied.
            b.function("mid")
                .statements(2)
                .cost(1)
                .calls("big", 5)
                .finish();
            b.function("big").statements(80).cost(1000).finish();
        });
        let main = bin
            .executable
            .function(bin.executable.function_index("main").unwrap());
        assert_eq!(main.call_sites.len(), 1);
        assert_eq!(main.call_sites[0].targets, vec!["big".to_string()]);
        assert_eq!(main.call_sites[0].trips, 15); // 3 * 5
        assert!(!bin.has_symbol("mid"));
        assert!(bin.has_symbol("big"));
    }

    #[test]
    fn recursive_functions_are_not_inlined() {
        let bin = compile_src(|b| {
            b.unit("m.cc", LinkTarget::Executable);
            b.function("main")
                .main()
                .statements(50)
                .calls("fib", 1)
                .finish();
            b.function("fib").statements(3).calls("fib", 2).finish();
        });
        assert!(bin.has_symbol("fib"));
        let main = bin
            .executable
            .function(bin.executable.function_index("main").unwrap());
        assert_eq!(main.call_sites.len(), 1);
    }

    #[test]
    fn mutual_recursion_not_inlined() {
        let bin = compile_src(|b| {
            b.unit("m.cc", LinkTarget::Executable);
            b.function("main")
                .main()
                .statements(50)
                .calls("even", 1)
                .finish();
            b.function("even").statements(2).calls("odd", 1).finish();
            b.function("odd").statements(2).calls("even", 1).finish();
        });
        assert!(bin.has_symbol("even"));
        assert!(bin.has_symbol("odd"));
    }

    #[test]
    fn virtual_and_address_taken_never_dropped() {
        let bin = compile_src(|b| {
            b.unit("m.cc", LinkTarget::Executable);
            b.function("main")
                .main()
                .statements(50)
                .calls_virtual("B::go", &["D::go"], 1)
                .calls_pointer(&["cb"], true, 1)
                .finish();
            b.function("D::go").statements(2).virtual_method().finish();
            b.function("cb").statements(2).address_taken().finish();
        });
        assert!(bin.has_symbol("D::go"));
        assert!(bin.has_symbol("cb"));
    }

    #[test]
    fn o0_disables_all_inlining() {
        let mut b = ProgramBuilder::new("app");
        b.unit("m.cc", LinkTarget::Executable);
        b.function("main")
            .main()
            .statements(50)
            .calls("tiny", 1)
            .finish();
        b.function("tiny").statements(2).finish();
        let p = b.build().unwrap();
        let bin = compile(&p, &CompileOptions::o0()).unwrap();
        assert!(bin.has_symbol("tiny"));
    }

    #[test]
    fn dso_partitioning_and_layout() {
        let bin = compile_src(|b| {
            b.unit("m.cc", LinkTarget::Executable);
            b.function("main")
                .main()
                .statements(50)
                .calls("solve", 1)
                .finish();
            b.unit("solver.cc", LinkTarget::Dso("libsolver.so".into()));
            b.function("solve")
                .statements(60)
                .instructions(400)
                .finish();
            b.function("helper2")
                .statements(60)
                .instructions(200)
                .finish();
        });
        assert_eq!(bin.dsos.len(), 1);
        assert_eq!(bin.dsos[0].name, "libsolver.so");
        assert_eq!(bin.dsos[0].num_functions(), 2);
        // Offsets are distinct and aligned.
        let f0 = bin.dsos[0].function(0);
        let f1 = bin.dsos[0].function(1);
        assert!(f1.offset >= f0.offset + f0.size as u64);
        assert_eq!(f1.offset % 16, 0);
    }

    #[test]
    fn mpi_stubs_survive_with_behavior() {
        let bin = compile_src(|b| {
            b.unit("m.cc", LinkTarget::Executable);
            b.function("main")
                .main()
                .statements(50)
                .calls("MPI_Init", 1)
                .finish();
            b.function("MPI_Init")
                .statements(1)
                .mpi(MpiCall::Init)
                .finish();
        });
        let (obj, idx) = bin.defining_object("MPI_Init").unwrap();
        assert_eq!(obj.function(idx).mpi, Some(MpiCall::Init));
    }

    #[test]
    fn undefined_reference_is_detected() {
        let mut b = ProgramBuilder::new("app");
        b.unit("m.cc", LinkTarget::Executable);
        b.function("main").main().calls("ghost", 1).finish();
        let p = b.build_unchecked();
        assert!(matches!(
            compile(&p, &CompileOptions::o2()),
            Err(CompileError::UndefinedReference(n)) if n == "ghost"
        ));
    }

    #[test]
    fn recompile_estimate_scales_with_statements() {
        let mut small = ProgramBuilder::new("s");
        small.unit("a.cc", LinkTarget::Executable);
        small.function("main").main().statements(10).finish();
        let small = small.build().unwrap();

        let mut big = ProgramBuilder::new("b");
        for u in 0..50 {
            big.unit(format!("u{u}.cc"), LinkTarget::Executable);
            if u == 0 {
                big.function("main").main().statements(500).finish();
            } else {
                big.function(&format!("f{u}")).statements(500).finish();
            }
        }
        let big = big.build().unwrap();
        let o2 = CompileOptions::o2();
        assert!(estimate_compile_time(&big, &o2) > 20 * estimate_compile_time(&small, &o2));
    }

    #[test]
    fn never_inline_protects_critical_functions() {
        // Paper §VII-C: user-marked critical functions keep their
        // instrumentation locations through compilation.
        let mut b = ProgramBuilder::new("app");
        b.unit("m.cc", LinkTarget::Executable);
        b.function("main")
            .main()
            .statements(50)
            .calls("tiny", 10)
            .finish();
        b.function("tiny").statements(2).cost(7).finish();
        let p = b.build().unwrap();
        let mut opts = CompileOptions::o2();
        opts.never_inline.insert("tiny".into());
        let bin = compile(&p, &opts).unwrap();
        assert!(
            bin.has_symbol("tiny"),
            "critical function survives inlining"
        );
        let main = bin
            .executable
            .function(bin.executable.function_index("main").unwrap());
        assert!(main.inlined.is_empty());
        assert_eq!(main.call_sites.len(), 1);
    }

    #[test]
    fn loop_depth_propagates_through_inlining() {
        let bin = compile_src(|b| {
            b.unit("m.cc", LinkTarget::Executable);
            b.function("main")
                .main()
                .statements(50)
                .calls("loopy", 1)
                .finish();
            b.function("loopy").statements(3).loop_depth(2).finish();
        });
        let main = bin
            .executable
            .function(bin.executable.function_index("main").unwrap());
        assert_eq!(main.loop_depth, 2);
    }
}
