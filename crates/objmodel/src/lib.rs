//! # capi-objmodel — compiler and binary-image substrate
//!
//! The paper's toolchain operates on *compiled artifacts*: a main
//! executable plus dynamic shared objects, each with symbol tables,
//! page-mapped code and (after the XRay pass) sled tables. This crate
//! provides the simulated equivalent:
//!
//! * [`compiler`] — lowers a [`capi_appmodel::SourceProgram`] into a
//!   [`Binary`]. Crucially, it makes **inlining decisions** the way a real
//!   compiler does: based on final size heuristics, *not* on the `inline`
//!   keyword alone. The whole-program call graph (built from source) does
//!   not see these decisions — exactly the mismatch that motivates CaPI's
//!   inlining compensation (paper §V-E).
//! * [`object`] — compiled objects: functions with offsets/sizes, symbol
//!   tables with ELF-style visibility (hidden symbols are the §VI-B
//!   resolution limitation), post-inlining call sites.
//! * [`memory`] — a paged address space with `mprotect` semantics; XRay
//!   patching must flip code pages writable exactly like the real
//!   runtime does.
//! * [`loader`] — a simulated process: loads the executable, `dlopen`s
//!   DSOs at relocated base addresses, binds symbols, and answers
//!   `/proc/<pid>/maps`-style queries used for symbol injection.

pub mod compiler;
pub mod fault;
pub mod loader;
pub mod memory;
pub mod object;
pub mod symbols;

pub use compiler::{compile, estimate_compile_time, CompileError, CompileOptions, OptLevel};
pub use fault::{FaultKind, FaultPlan, FiredFault, ScriptedFault};
pub use loader::{CloseOutcome, FuncAddr, LoadError, LoadedObject, MapEntry, Process};
pub use memory::{AddressSpace, MemError, PagePerms, PAGE_SIZE};
pub use object::{Binary, CompiledCallSite, CompiledFunction, DispatchKind, Object, ObjectKind};
pub use symbols::{SymKind, Symbol, SymbolTable};
