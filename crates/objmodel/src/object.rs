//! Compiled objects: the executable and its DSOs.

use crate::symbols::SymbolTable;
use capi_appmodel::{FunctionKind, MpiCall, Visibility};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Executable vs. shared object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjectKind {
    /// The main executable. XRay always assigns it object ID 0 for
    /// backwards compatibility (paper §V-B1).
    Executable,
    /// A dynamic shared object; must use position-independent
    /// trampolines after relocation (paper §V-B2).
    SharedObject,
}

/// How a compiled call site dispatches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchKind {
    /// Direct call; single target.
    Direct,
    /// Virtual dispatch; the executor cycles deterministically through
    /// the override set.
    Virtual,
    /// Indirect call through a function pointer.
    Pointer,
}

/// A call site that survived inlining.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CompiledCallSite {
    /// Candidate target names (singleton for direct calls).
    pub targets: Vec<String>,
    /// Dispatch mechanism.
    pub dispatch: DispatchKind,
    /// Executions per invocation of the containing function.
    pub trips: u64,
}

/// A function as it exists in a compiled object (post-inlining).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CompiledFunction {
    /// Mangled name.
    pub name: String,
    /// Human-readable signature.
    pub demangled: String,
    /// Offset within the object.
    pub offset: u64,
    /// Code size in bytes.
    pub size: u32,
    /// Machine instruction count (XRay threshold pre-filter input).
    pub instructions: u32,
    /// Maximum loop nesting depth after inlining. XRay's pre-filter
    /// instruments loop-bearing functions regardless of size.
    pub loop_depth: u32,
    /// Symbol visibility.
    pub visibility: Visibility,
    /// Function role.
    pub kind: FunctionKind,
    /// Per-invocation compute cost in virtual ns, with all inlined callee
    /// bodies folded in.
    pub body_cost_ns: u64,
    /// Per-rank imbalance percentage (see `capi_appmodel::Behavior`).
    pub imbalance_pct: u32,
    /// MPI operation performed by this body, if it is an MPI stub.
    pub mpi: Option<MpiCall>,
    /// Call sites remaining after inlining.
    pub call_sites: Vec<CompiledCallSite>,
    /// Names of source functions whose bodies were folded into this one.
    /// Profiling events for those functions appear under this caller —
    /// the effect the paper's §V-E compensation relies on.
    pub inlined: Vec<String>,
    /// Number of return sites (each gets an exit sled).
    pub return_sites: u32,
}

/// A compiled object file (executable or DSO).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Object {
    /// File name, e.g. `icoFoam` or `libfiniteVolume.so`.
    pub name: String,
    /// Object kind.
    pub kind: ObjectKind,
    /// Functions with emitted bodies, in layout order.
    pub functions: Vec<CompiledFunction>,
    /// Symbol table.
    pub symtab: SymbolTable,
    /// Total code size in bytes.
    pub code_size: u64,
    #[serde(skip)]
    by_name: HashMap<String, u32>,
}

impl Object {
    /// Creates an object from laid-out functions.
    pub fn new(
        name: String,
        kind: ObjectKind,
        functions: Vec<CompiledFunction>,
        symtab: SymbolTable,
    ) -> Self {
        let code_size = functions
            .iter()
            .map(|f| f.offset + f.size as u64)
            .max()
            .unwrap_or(0);
        let by_name = functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i as u32))
            .collect();
        Self {
            name,
            kind,
            functions,
            symtab,
            code_size,
            by_name,
        }
    }

    /// Index of the function named `name`, if it has an emitted body.
    pub fn function_index(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Function by local index.
    pub fn function(&self, idx: u32) -> &CompiledFunction {
        &self.functions[idx as usize]
    }

    /// Function whose code contains `offset`.
    pub fn function_at_offset(&self, offset: u64) -> Option<(u32, &CompiledFunction)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| offset >= f.offset && offset < f.offset + f.size as u64)
            .map(|(i, f)| (i as u32, f))
    }

    /// Number of emitted functions.
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// Rebuilds the name index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i as u32))
            .collect();
    }
}

/// A fully compiled program: one executable plus its DSOs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Binary {
    /// The main executable.
    pub executable: Object,
    /// Shared objects in link order.
    pub dsos: Vec<Object>,
}

impl Binary {
    /// Iterates over all objects, executable first.
    pub fn objects(&self) -> impl Iterator<Item = &Object> {
        std::iter::once(&self.executable).chain(self.dsos.iter())
    }

    /// Finds the object defining `name` (searches executable first, the
    /// dynamic-linker resolution order).
    pub fn defining_object(&self, name: &str) -> Option<(&Object, u32)> {
        self.objects()
            .find_map(|o| o.function_index(name).map(|i| (o, i)))
    }

    /// Whether any object emits a symbol body for `name` — the
    /// approximation CaPI's inlining compensation uses: "if a function
    /// symbol cannot be found, it has been inlined at all call sites"
    /// (paper §V-E).
    pub fn has_symbol(&self, name: &str) -> bool {
        self.objects().any(|o| o.symtab.lookup(name).is_some())
    }

    /// Total emitted functions across all objects.
    pub fn total_functions(&self) -> usize {
        self.objects().map(Object::num_functions).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{SymKind, Symbol};

    fn func(name: &str, offset: u64, size: u32) -> CompiledFunction {
        CompiledFunction {
            name: name.into(),
            demangled: name.into(),
            offset,
            size,
            instructions: size / 4,
            loop_depth: 0,
            visibility: Visibility::Default,
            kind: FunctionKind::Normal,
            body_cost_ns: 10,
            imbalance_pct: 0,
            mpi: None,
            call_sites: vec![],
            inlined: vec![],
            return_sites: 1,
        }
    }

    fn object(name: &str, fns: Vec<CompiledFunction>) -> Object {
        let mut symtab = SymbolTable::new();
        for f in &fns {
            symtab.push(Symbol {
                name: f.name.clone(),
                offset: f.offset,
                size: f.size,
                visibility: f.visibility,
                kind: SymKind::Func,
            });
        }
        Object::new(name.into(), ObjectKind::SharedObject, fns, symtab)
    }

    #[test]
    fn function_lookup_by_name_and_offset() {
        let o = object("lib.so", vec![func("a", 0, 64), func("b", 64, 32)]);
        assert_eq!(o.function_index("b"), Some(1));
        let (idx, f) = o.function_at_offset(70).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(f.name, "b");
        assert!(o.function_at_offset(96).is_none());
    }

    #[test]
    fn code_size_spans_functions() {
        let o = object("lib.so", vec![func("a", 0, 64), func("b", 64, 32)]);
        assert_eq!(o.code_size, 96);
    }

    #[test]
    fn binary_resolution_prefers_executable() {
        let exe = Object::new(
            "app".into(),
            ObjectKind::Executable,
            vec![func("dup", 0, 64)],
            SymbolTable::new(),
        );
        let dso = object("lib.so", vec![func("dup", 0, 32)]);
        let bin = Binary {
            executable: exe,
            dsos: vec![dso],
        };
        let (obj, _) = bin.defining_object("dup").unwrap();
        assert_eq!(obj.kind, ObjectKind::Executable);
    }

    #[test]
    fn has_symbol_reflects_symtab_not_functions() {
        // A symbol can be retained even without a function body entry in
        // `functions` (e.g. address-taken inlined function).
        let mut symtab = SymbolTable::new();
        symtab.push(Symbol {
            name: "ghost".into(),
            offset: 0,
            size: 0,
            visibility: Visibility::Default,
            kind: SymKind::Func,
        });
        let exe = Object::new("app".into(), ObjectKind::Executable, vec![], symtab);
        let bin = Binary {
            executable: exe,
            dsos: vec![],
        };
        assert!(bin.has_symbol("ghost"));
        assert!(!bin.has_symbol("missing"));
    }
}
