//! Symbol tables for compiled objects.
//!
//! DynCaPI resolves XRay function IDs to names by collecting each
//! object's symbols (`nm` in the paper, §V-C1) and translating them
//! through the process memory map. Hidden/internal symbols are missing
//! from that listing — the §VI-B limitation where 1,444 OpenFOAM
//! functions (largely static initializers) could not be resolved.

use capi_appmodel::Visibility;
use serde::{Deserialize, Serialize};

/// What a symbol refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SymKind {
    /// A function definition.
    Func,
    /// A compiler-emitted static initializer.
    StaticInit,
}

/// One symbol-table entry.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Symbol {
    /// Mangled name.
    pub name: String,
    /// Offset of the definition within its object.
    pub offset: u64,
    /// Size in bytes.
    pub size: u32,
    /// ELF-style visibility.
    pub visibility: Visibility,
    /// Symbol kind.
    pub kind: SymKind,
}

/// A per-object symbol table.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SymbolTable {
    symbols: Vec<Symbol>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a symbol.
    pub fn push(&mut self, sym: Symbol) {
        self.symbols.push(sym);
    }

    /// All symbols, including hidden and internal ones (like `nm` run on
    /// an unstripped object with local symbols shown).
    pub fn all(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Only the symbols visible to dynamic symbol resolution — what
    /// DynCaPI's `nm`-based collection can actually see.
    pub fn exported(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols
            .iter()
            .filter(|s| s.visibility == Visibility::Default)
    }

    /// Looks up a symbol by name (any visibility).
    pub fn lookup(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Looks up an *exported* symbol by name.
    pub fn lookup_exported(&self, name: &str) -> Option<&Symbol> {
        self.exported().find(|s| s.name == name)
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Count of symbols invisible to dynamic resolution.
    pub fn hidden_count(&self) -> usize {
        self.symbols
            .iter()
            .filter(|s| s.visibility != Visibility::Default)
            .count()
    }

    /// `nm`-style text listing: `offset kind name`, exported symbols
    /// only when `dynamic_only` (mirrors `nm -D`).
    pub fn nm_listing(&self, dynamic_only: bool) -> String {
        let mut out = String::new();
        for s in &self.symbols {
            if dynamic_only && s.visibility != Visibility::Default {
                continue;
            }
            let t = match (s.kind, s.visibility) {
                (SymKind::Func, Visibility::Default) => 'T',
                (SymKind::Func, _) => 't',
                (SymKind::StaticInit, _) => 't',
            };
            out.push_str(&format!("{:016x} {} {}\n", s.offset, t, s.name));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SymbolTable {
        let mut t = SymbolTable::new();
        t.push(Symbol {
            name: "foo".into(),
            offset: 0x100,
            size: 64,
            visibility: Visibility::Default,
            kind: SymKind::Func,
        });
        t.push(Symbol {
            name: "_GLOBAL__sub_I_x".into(),
            offset: 0x200,
            size: 16,
            visibility: Visibility::Hidden,
            kind: SymKind::StaticInit,
        });
        t.push(Symbol {
            name: "local_helper".into(),
            offset: 0x300,
            size: 32,
            visibility: Visibility::Internal,
            kind: SymKind::Func,
        });
        t
    }

    #[test]
    fn exported_excludes_hidden_and_internal() {
        let t = table();
        let names: Vec<&str> = t.exported().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["foo"]);
        assert_eq!(t.hidden_count(), 2);
    }

    #[test]
    fn lookup_sees_everything_lookup_exported_does_not() {
        let t = table();
        assert!(t.lookup("_GLOBAL__sub_I_x").is_some());
        assert!(t.lookup_exported("_GLOBAL__sub_I_x").is_none());
        assert!(t.lookup_exported("foo").is_some());
    }

    #[test]
    fn nm_listing_formats_and_filters() {
        let t = table();
        let full = t.nm_listing(false);
        assert_eq!(full.lines().count(), 3);
        assert!(full.contains("0000000000000100 T foo"));
        assert!(full.contains("t _GLOBAL__sub_I_x"));
        let dynamic = t.nm_listing(true);
        assert_eq!(dynamic.lines().count(), 1);
    }
}
