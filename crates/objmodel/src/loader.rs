//! Simulated process and dynamic loader.
//!
//! The paper's DynCaPI resolves symbols by "examining the virtual memory
//! layout of the running process" and translating per-object symbol
//! addresses to their mapped locations (§V-C1, symbol injection). This
//! module provides that substrate: objects are loaded at page-aligned
//! base addresses (DSOs at *relocated* bases — which is why trampolines
//! must be position-independent, §V-B2), symbols are bound in dynamic-
//! linker resolution order, and the process can produce a
//! `/proc/<pid>/maps`-style listing.
//!
//! Beyond the static startup picture, the loader models the lifecycle a
//! real runtime linker manages: `dlopen` with NEEDED dependencies,
//! `dlclose` that refuses (or defers) while dependents remain, symbol
//! interposition (a later-loaded object shadowing an earlier symbol in
//! resolution order), rebuild-and-reload, and a deterministic
//! [`FaultPlan`] hook that makes loader failures scriptable.

use crate::fault::{FaultKind, FaultPlan, FiredFault};
use crate::memory::{AddressSpace, MemError, PagePerms, PAGE_SIZE};
use crate::object::{Binary, Object, ObjectKind};
use std::fmt;
use std::sync::Arc;

/// Preferred base of the main executable.
pub const EXE_BASE: u64 = 0x0040_0000;
/// Base of the DSO mapping area; every DSO is relocated here, away from
/// its preferred (link-time) base of 0.
pub const DSO_AREA: u64 = 0x7f00_0000_0000;
/// Gap between consecutive DSO mappings.
const DSO_STRIDE: u64 = 0x0100_0000;

/// Resolved function location.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuncAddr {
    /// Index into the process' loaded-object list (0 = executable).
    pub object: usize,
    /// Function index within the object.
    pub func: u32,
    /// Absolute virtual address.
    pub addr: u64,
}

/// Loader errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadError {
    /// Mapping failed.
    Mem(MemError),
    /// `dlclose` on an object that is not loaded.
    NotLoaded(String),
    /// `dlopen` of an already-loaded object.
    AlreadyLoaded(String),
    /// `dlclose` on an object other loaded objects still depend on.
    HasDependents {
        /// The object being closed.
        name: String,
        /// Loaded objects with a NEEDED edge on it, in load order.
        dependents: Vec<String>,
    },
    /// `dlopen` with a NEEDED dependency that is not loaded.
    MissingDependency {
        /// The object being opened.
        name: String,
        /// The dependency that is absent.
        needed: String,
    },
    /// A scripted [`FaultPlan`] fault fired.
    Fault {
        /// Which fault class fired.
        kind: FaultKind,
        /// The object the faulting operation targeted.
        name: String,
    },
}

impl LoadError {
    /// Stable machine-readable tag, in the `PersistError::kind()` mold.
    pub fn kind(&self) -> &'static str {
        match self {
            LoadError::Mem(_) => "mem",
            LoadError::NotLoaded(_) => "not_loaded",
            LoadError::AlreadyLoaded(_) => "already_loaded",
            LoadError::HasDependents { .. } => "has_dependents",
            LoadError::MissingDependency { .. } => "missing_dependency",
            LoadError::Fault { kind, .. } => kind.kind(),
        }
    }
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Mem(e) => write!(f, "mapping failure: {e}"),
            LoadError::NotLoaded(n) => write!(f, "object `{n}` is not loaded"),
            LoadError::AlreadyLoaded(n) => write!(f, "object `{n}` is already loaded"),
            LoadError::HasDependents { name, dependents } => write!(
                f,
                "object `{name}` still has dependents: {}",
                dependents.join(", ")
            ),
            LoadError::MissingDependency { name, needed } => {
                write!(f, "object `{name}` needs `{needed}`, which is not loaded")
            }
            LoadError::Fault { kind, name } => {
                write!(f, "injected fault `{kind}` on object `{name}`")
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for LoadError {
    fn from(e: MemError) -> Self {
        LoadError::Mem(e)
    }
}

/// What `dlclose_deferred` did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseOutcome {
    /// The object had no dependents and was unloaded immediately.
    Closed,
    /// Dependents remain: the object left symbol resolution but stays
    /// mapped until its last dependent closes (deferred finalization).
    Deferred,
}

/// One loaded object: shared image + its base address.
#[derive(Clone, Debug)]
pub struct LoadedObject {
    /// The object image (shared; images are immutable once compiled).
    pub image: Arc<Object>,
    /// Load base address.
    pub base: u64,
    /// Whether the object was loaded at its preferred base (true only
    /// for the executable). Relocated objects require GOT-relative
    /// addressing in trampolines.
    pub at_preferred_base: bool,
    /// Deferred finalization: `dlclose_deferred` was called while
    /// dependents remained. The object stays mapped (its code is still
    /// reachable from dependents) but no longer participates in symbol
    /// resolution; it is unmapped when the last dependent closes.
    pub pending_fini: bool,
}

impl LoadedObject {
    /// Absolute address of a function.
    pub fn func_addr(&self, idx: u32) -> u64 {
        self.base + self.image.function(idx).offset
    }
}

/// A `/proc/<pid>/maps`-style entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapEntry {
    /// Mapping base.
    pub base: u64,
    /// Mapping length.
    pub len: u64,
    /// Backing object name.
    pub path: String,
}

/// The simulated process.
#[derive(Clone, Debug)]
pub struct Process {
    /// Loaded objects; index 0 is always the executable.
    objects: Vec<Option<LoadedObject>>,
    /// The address space with page permissions.
    pub memory: AddressSpace,
    next_dso_slot: u64,
    /// Symbol-resolution scope: object indices in lookup order. The
    /// executable is always first; `dlopen` appends, `dlopen_interpose`
    /// inserts right after the executable (LD_PRELOAD position).
    resolution_order: Vec<usize>,
    /// NEEDED edges as (dependent, dependency) object names.
    deps: Vec<(String, String)>,
    /// Scripted loader faults (dlopen-class and session-driven kinds;
    /// mprotect faults move into the address space on installation).
    fault_plan: Option<FaultPlan>,
    /// Total `dlopen` calls issued (the dlopen-fault clock).
    dlopen_calls: u64,
    /// Faults that fired in this loader, for audit.
    fault_log: Vec<FiredFault>,
}

impl Process {
    /// Creates a process with `exe` mapped at its preferred base.
    pub fn launch(exe: Arc<Object>) -> Result<Self, LoadError> {
        assert_eq!(
            exe.kind,
            ObjectKind::Executable,
            "launch requires an executable"
        );
        let mut memory = AddressSpace::new();
        memory.map(EXE_BASE, exe.code_size.max(1), PagePerms::RX, &exe.name)?;
        Ok(Self {
            objects: vec![Some(LoadedObject {
                image: exe,
                base: EXE_BASE,
                at_preferred_base: true,
                pending_fini: false,
            })],
            memory,
            next_dso_slot: 0,
            resolution_order: vec![0],
            deps: Vec::new(),
            fault_plan: None,
            dlopen_calls: 0,
            fault_log: Vec::new(),
        })
    }

    /// Convenience: launches a process and `dlopen`s every DSO of `bin`
    /// (the usual `ld.so` startup for NEEDED entries).
    pub fn launch_binary(bin: &Binary) -> Result<Self, LoadError> {
        let mut p = Self::launch(Arc::new(bin.executable.clone()))?;
        for dso in &bin.dsos {
            p.dlopen(Arc::new(dso.clone()))?;
        }
        Ok(p)
    }

    /// Installs a fault plan: `mprotect`-class faults are scheduled on
    /// the address space (they fire inside [`AddressSpace::mprotect`]);
    /// everything else stays with the loader. Replaces any prior plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        for f in plan.of_kinds(&[FaultKind::MprotectFail]) {
            self.memory.schedule_mprotect_fault(f.at);
        }
        self.fault_plan = Some(plan);
    }

    /// The installed fault plan's remaining (unfired) faults, if any.
    /// The session layer drains [`FaultKind::UnloadRace`] entries here.
    pub fn fault_plan_mut(&mut self) -> Option<&mut FaultPlan> {
        self.fault_plan.as_mut()
    }

    /// Loader faults that fired, in firing order.
    pub fn fired_faults(&self) -> &[FiredFault] {
        &self.fault_log
    }

    /// Total `dlopen` calls issued so far (the dlopen-fault clock).
    pub fn dlopen_calls(&self) -> u64 {
        self.dlopen_calls
    }

    /// Loads a shared object at a relocated base; returns its index.
    pub fn dlopen(&mut self, dso: Arc<Object>) -> Result<usize, LoadError> {
        self.dlopen_inner(dso, &[], false)
    }

    /// Loads a shared object whose NEEDED entries are `needed` (by
    /// object name). Every dependency must already be loaded; the edges
    /// then guard `dlclose` ordering.
    pub fn dlopen_needed(&mut self, dso: Arc<Object>, needed: &[&str]) -> Result<usize, LoadError> {
        self.dlopen_inner(dso, needed, false)
    }

    /// Loads a shared object *interposed*: it enters symbol resolution
    /// right after the executable, shadowing same-named symbols of every
    /// earlier-loaded DSO (the LD_PRELOAD position).
    pub fn dlopen_interpose(&mut self, dso: Arc<Object>) -> Result<usize, LoadError> {
        self.dlopen_inner(dso, &[], true)
    }

    fn dlopen_inner(
        &mut self,
        dso: Arc<Object>,
        needed: &[&str],
        interpose: bool,
    ) -> Result<usize, LoadError> {
        let at = self.dlopen_calls;
        self.dlopen_calls += 1;
        // Scripted dlopen-class faults fire first, at their exact index,
        // regardless of what the call would otherwise have done.
        let dlopen_kinds = [
            FaultKind::DlopenOom,
            FaultKind::Relocation,
            FaultKind::PartialLoad,
        ];
        if let Some(f) = self
            .fault_plan
            .as_mut()
            .and_then(|p| p.take_matching(at, &dlopen_kinds))
        {
            return Err(self.fire_dlopen_fault(f.kind, at, dso.as_ref(), needed, interpose));
        }
        if self.loaded_index(&dso.name).is_some() {
            return Err(LoadError::AlreadyLoaded(dso.name.clone()));
        }
        for n in needed {
            if self.loaded_index(n).is_none() {
                return Err(LoadError::MissingDependency {
                    name: dso.name.clone(),
                    needed: n.to_string(),
                });
            }
        }
        let base = DSO_AREA + self.next_dso_slot * DSO_STRIDE;
        self.memory
            .map(base, dso.code_size.max(1), PagePerms::RX, &dso.name)?;
        self.next_dso_slot += 1;
        let name = dso.name.clone();
        let entry = LoadedObject {
            image: dso,
            base,
            at_preferred_base: false,
            pending_fini: false,
        };
        // Reuse a vacated slot if any (dlclose leaves holes so indices of
        // other objects remain stable).
        let idx = if let Some(i) = self.objects.iter().position(Option::is_none) {
            self.objects[i] = Some(entry);
            i
        } else {
            self.objects.push(Some(entry));
            self.objects.len() - 1
        };
        if interpose {
            // Position 1: behind the executable, ahead of every DSO.
            self.resolution_order.insert(1, idx);
        } else {
            self.resolution_order.push(idx);
        }
        for n in needed {
            self.deps.push((name.clone(), n.to_string()));
        }
        Ok(idx)
    }

    /// Applies one scripted dlopen-class fault, leaving the process state
    /// exactly as before the call (counters and audit log aside).
    fn fire_dlopen_fault(
        &mut self,
        kind: FaultKind,
        at: u64,
        dso: &Object,
        _needed: &[&str],
        _interpose: bool,
    ) -> LoadError {
        if kind == FaultKind::PartialLoad {
            // The mapping goes through, then load processing fails and
            // everything is rolled back: no region leaks, no slot burns.
            let base = DSO_AREA + self.next_dso_slot * DSO_STRIDE;
            if self
                .memory
                .map(base, dso.code_size.max(1), PagePerms::RX, &dso.name)
                .is_ok()
            {
                self.memory.unmap(base).expect("rollback of fresh mapping");
            }
        }
        self.fault_log.push(FiredFault {
            at,
            kind,
            target: dso.name.clone(),
        });
        LoadError::Fault {
            kind,
            name: dso.name.clone(),
        }
    }

    /// Unloads a shared object by name. Fails typed with
    /// [`LoadError::HasDependents`] while NEEDED edges point at it; use
    /// [`Self::dlclose_deferred`] to defer finalization instead.
    pub fn dlclose(&mut self, name: &str) -> Result<(), LoadError> {
        let idx = self
            .loaded_index(name)
            .ok_or_else(|| LoadError::NotLoaded(name.to_string()))?;
        assert!(idx != 0, "cannot dlclose the main executable");
        let dependents = self.dependents_of(name);
        if !dependents.is_empty() {
            return Err(LoadError::HasDependents {
                name: name.to_string(),
                dependents,
            });
        }
        self.finalize(idx)?;
        Ok(())
    }

    /// Unloads a shared object, deferring finalization while dependents
    /// remain: the object immediately leaves symbol resolution, stays
    /// mapped for its dependents, and is unmapped automatically when the
    /// last dependent closes.
    pub fn dlclose_deferred(&mut self, name: &str) -> Result<CloseOutcome, LoadError> {
        let idx = self
            .loaded_index(name)
            .ok_or_else(|| LoadError::NotLoaded(name.to_string()))?;
        assert!(idx != 0, "cannot dlclose the main executable");
        if self.dependents_of(name).is_empty() {
            self.finalize(idx)?;
            return Ok(CloseOutcome::Closed);
        }
        let obj = self.objects[idx].as_mut().expect("index from loaded_index");
        obj.pending_fini = true;
        self.resolution_order.retain(|&i| i != idx);
        Ok(CloseOutcome::Deferred)
    }

    /// Rebuild-and-reload: atomically replaces the loaded object named
    /// like `dso` with the new image at a fresh base, preserving its
    /// position in symbol-resolution order. Fails typed (and changes
    /// nothing) while dependents hold NEEDED edges on it.
    pub fn reload(&mut self, dso: Arc<Object>) -> Result<usize, LoadError> {
        let idx = self
            .loaded_index(&dso.name)
            .ok_or_else(|| LoadError::NotLoaded(dso.name.clone()))?;
        assert!(idx != 0, "cannot reload the main executable");
        let dependents = self.dependents_of(&dso.name);
        if !dependents.is_empty() {
            return Err(LoadError::HasDependents {
                name: dso.name.clone(),
                dependents,
            });
        }
        let pos = self
            .resolution_order
            .iter()
            .position(|&i| i == idx)
            .expect("loaded object is in resolution order");
        self.finalize(idx)?;
        let new_idx = self.dlopen(dso)?;
        // dlopen appended; restore the old resolution position.
        self.resolution_order.retain(|&i| i != new_idx);
        let pos = pos.min(self.resolution_order.len());
        self.resolution_order.insert(pos, new_idx);
        Ok(new_idx)
    }

    /// Unmaps object `idx`, vacates its slot, drops its outgoing NEEDED
    /// edges, and cascade-finalizes pending-fini objects it was the last
    /// dependent of.
    fn finalize(&mut self, idx: usize) -> Result<(), LoadError> {
        let obj = self.objects[idx].take().expect("finalize of loaded object");
        self.memory.unmap(obj.base)?;
        self.resolution_order.retain(|&i| i != idx);
        let name = obj.image.name.clone();
        self.deps.retain(|(dependent, _)| *dependent != name);
        // This close may have released a deferred-fini dependency.
        let ready: Vec<usize> = self
            .objects
            .iter()
            .enumerate()
            .filter_map(|(i, o)| {
                let o = o.as_ref()?;
                (o.pending_fini && self.dependents_of(&o.image.name).is_empty()).then_some(i)
            })
            .collect();
        for i in ready {
            self.finalize(i)?;
        }
        Ok(())
    }

    /// Loaded objects with a NEEDED edge on `name`, in load order.
    pub fn dependents_of(&self, name: &str) -> Vec<String> {
        self.deps
            .iter()
            .filter(|(_, dependency)| dependency == name)
            .filter(|(dependent, _)| self.loaded_index(dependent).is_some())
            .map(|(dependent, _)| dependent.clone())
            .collect()
    }

    /// Whether `name` is loaded but awaiting deferred finalization.
    pub fn is_pending_fini(&self, name: &str) -> bool {
        self.loaded_index(name)
            .and_then(|i| self.objects[i].as_ref())
            .is_some_and(|o| o.pending_fini)
    }

    /// Index of a loaded object by name.
    pub fn loaded_index(&self, name: &str) -> Option<usize> {
        self.objects
            .iter()
            .position(|o| o.as_ref().is_some_and(|o| o.image.name == name))
    }

    /// Loaded object by index (None if unloaded).
    pub fn object(&self, idx: usize) -> Option<&LoadedObject> {
        self.objects.get(idx).and_then(Option::as_ref)
    }

    /// All currently loaded objects with their indices (including any
    /// awaiting deferred finalization — they are still mapped).
    pub fn loaded(&self) -> impl Iterator<Item = (usize, &LoadedObject)> {
        self.objects
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.as_ref().map(|o| (i, o)))
    }

    /// Number of loaded objects.
    pub fn num_loaded(&self) -> usize {
        self.objects.iter().flatten().count()
    }

    /// Resolves `name` in dynamic-linker scope order: executable first,
    /// then DSOs in load order — except interposed objects, which sit
    /// right behind the executable and shadow same-named symbols of
    /// earlier-loaded DSOs. Pending-fini objects no longer resolve. Only
    /// *emitted* function bodies resolve.
    pub fn resolve(&self, name: &str) -> Option<FuncAddr> {
        for &i in &self.resolution_order {
            let Some(o) = self.objects[i].as_ref() else {
                continue;
            };
            if let Some(fi) = o.image.function_index(name) {
                return Some(FuncAddr {
                    object: i,
                    func: fi,
                    addr: o.func_addr(fi),
                });
            }
        }
        None
    }

    /// Reverse lookup: which function contains `addr`?
    pub fn function_at(&self, addr: u64) -> Option<FuncAddr> {
        for (i, o) in self.loaded() {
            if addr >= o.base && addr < o.base + o.image.code_size {
                if let Some((fi, _)) = o.image.function_at_offset(addr - o.base) {
                    return Some(FuncAddr {
                        object: i,
                        func: fi,
                        addr: o.func_addr(fi),
                    });
                }
            }
        }
        None
    }

    /// `/proc/<pid>/maps`-style listing, ascending by base.
    pub fn memory_map(&self) -> Vec<MapEntry> {
        let mut entries: Vec<MapEntry> = self
            .loaded()
            .map(|(_, o)| MapEntry {
                base: o.base,
                len: o.image.code_size.div_ceil(PAGE_SIZE).max(1) * PAGE_SIZE,
                path: o.image.name.clone(),
            })
            .collect();
        entries.sort_by_key(|e| e.base);
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, CompileOptions};
    use capi_appmodel::{LinkTarget, ProgramBuilder};

    fn binary() -> Binary {
        let mut b = ProgramBuilder::new("app");
        b.unit("m.cc", LinkTarget::Executable);
        b.function("main")
            .main()
            .statements(50)
            .calls("solve", 1)
            .finish();
        b.unit("s.cc", LinkTarget::Dso("libsolver.so".into()));
        b.function("solve")
            .statements(60)
            .instructions(400)
            .finish();
        b.unit("t.cc", LinkTarget::Dso("libtools.so".into()));
        b.function("tool").statements(60).instructions(300).finish();
        let p = b.build().unwrap();
        compile(&p, &CompileOptions::o2()).unwrap()
    }

    /// A standalone DSO exporting `solve` (for interposition tests).
    fn shadow_dso(name: &str) -> Arc<Object> {
        let mut b = ProgramBuilder::new("shadow");
        b.unit("m.cc", LinkTarget::Executable);
        b.function("main").main().statements(5).finish();
        b.unit("sh.cc", LinkTarget::Dso(name.into()));
        b.function("solve")
            .statements(30)
            .instructions(200)
            .finish();
        let p = b.build().unwrap();
        let bin = compile(&p, &CompileOptions::o2()).unwrap();
        Arc::new(bin.dsos[0].clone())
    }

    #[test]
    fn launch_binary_loads_everything() {
        let bin = binary();
        let p = Process::launch_binary(&bin).unwrap();
        assert_eq!(p.num_loaded(), 3);
        assert!(p.object(0).unwrap().at_preferred_base);
        assert!(!p.object(1).unwrap().at_preferred_base);
    }

    #[test]
    fn resolution_order_is_exe_first_then_load_order() {
        let bin = binary();
        let p = Process::launch_binary(&bin).unwrap();
        let main = p.resolve("main").unwrap();
        assert_eq!(main.object, 0);
        let solve = p.resolve("solve").unwrap();
        assert_eq!(solve.object, 1);
        assert!(solve.addr >= DSO_AREA);
        assert!(p.resolve("nonexistent").is_none());
    }

    #[test]
    fn function_at_reverse_lookup() {
        let bin = binary();
        let p = Process::launch_binary(&bin).unwrap();
        let solve = p.resolve("solve").unwrap();
        let back = p.function_at(solve.addr + 4).unwrap();
        assert_eq!(back.func, solve.func);
        assert_eq!(back.object, solve.object);
        assert!(p.function_at(0xdead_beef_0000).is_none());
    }

    #[test]
    fn dlclose_unloads_and_slot_is_reused() {
        let bin = binary();
        let mut p = Process::launch_binary(&bin).unwrap();
        p.dlclose("libsolver.so").unwrap();
        assert_eq!(p.num_loaded(), 2);
        assert!(p.resolve("solve").is_none());
        // Reload into the vacated slot.
        let idx = p.dlopen(Arc::new(bin.dsos[0].clone())).unwrap();
        assert_eq!(idx, 1);
        assert!(p.resolve("solve").is_some());
    }

    #[test]
    fn dlopen_twice_fails() {
        let bin = binary();
        let mut p = Process::launch_binary(&bin).unwrap();
        assert!(matches!(
            p.dlopen(Arc::new(bin.dsos[0].clone())),
            Err(LoadError::AlreadyLoaded(_))
        ));
    }

    #[test]
    fn memory_map_lists_all_objects_sorted() {
        let bin = binary();
        let p = Process::launch_binary(&bin).unwrap();
        let map = p.memory_map();
        assert_eq!(map.len(), 3);
        assert_eq!(map[0].path, "app");
        assert!(map.windows(2).all(|w| w[0].base < w[1].base));
    }

    #[test]
    fn dso_bases_do_not_collide() {
        let bin = binary();
        let p = Process::launch_binary(&bin).unwrap();
        let bases: Vec<u64> = p.loaded().map(|(_, o)| o.base).collect();
        let mut dedup = bases.clone();
        dedup.dedup();
        assert_eq!(bases.len(), dedup.len());
    }

    #[test]
    fn needed_edges_block_dlclose_typed() {
        let bin = binary();
        let mut p = Process::launch_binary(&bin).unwrap();
        p.dlclose("libtools.so").unwrap();
        let idx = p
            .dlopen_needed(Arc::new(bin.dsos[1].clone()), &["libsolver.so"])
            .unwrap();
        assert!(p.object(idx).is_some());
        let err = p.dlclose("libsolver.so").unwrap_err();
        assert_eq!(err.kind(), "has_dependents");
        assert!(matches!(
            err,
            LoadError::HasDependents { ref dependents, .. } if dependents == &["libtools.so"]
        ));
        // Closing the dependent releases the dependency.
        p.dlclose("libtools.so").unwrap();
        p.dlclose("libsolver.so").unwrap();
        assert_eq!(p.num_loaded(), 1);
    }

    #[test]
    fn missing_dependency_is_typed() {
        let bin = binary();
        let mut p = Process::launch_binary(&bin).unwrap();
        p.dlclose("libtools.so").unwrap();
        p.dlclose("libsolver.so").unwrap();
        let err = p
            .dlopen_needed(Arc::new(bin.dsos[1].clone()), &["libsolver.so"])
            .unwrap_err();
        assert_eq!(err.kind(), "missing_dependency");
    }

    #[test]
    fn deferred_fini_keeps_object_mapped_until_last_dependent_closes() {
        let bin = binary();
        let mut p = Process::launch_binary(&bin).unwrap();
        p.dlclose("libtools.so").unwrap();
        p.dlopen_needed(Arc::new(bin.dsos[1].clone()), &["libsolver.so"])
            .unwrap();
        let outcome = p.dlclose_deferred("libsolver.so").unwrap();
        assert_eq!(outcome, CloseOutcome::Deferred);
        assert!(p.is_pending_fini("libsolver.so"));
        // Still mapped, but out of symbol resolution.
        assert_eq!(p.num_loaded(), 3);
        assert!(p.resolve("solve").is_none());
        // Last dependent closes → cascade finalization.
        p.dlclose("libtools.so").unwrap();
        assert_eq!(p.num_loaded(), 1);
        assert!(p.loaded_index("libsolver.so").is_none());
    }

    #[test]
    fn interposed_dso_shadows_earlier_symbol() {
        let bin = binary();
        let mut p = Process::launch_binary(&bin).unwrap();
        let before = p.resolve("solve").unwrap();
        assert_eq!(before.object, 1);
        let idx = p.dlopen_interpose(shadow_dso("libshadow.so")).unwrap();
        let after = p.resolve("solve").unwrap();
        assert_eq!(after.object, idx, "interposed object must win resolution");
        assert_ne!(after.addr, before.addr);
        // Unloading the interposer restores the original binding.
        p.dlclose("libshadow.so").unwrap();
        assert_eq!(p.resolve("solve").unwrap().addr, before.addr);
    }

    #[test]
    fn reload_replaces_image_at_fresh_base_preserving_order() {
        let bin = binary();
        let mut p = Process::launch_binary(&bin).unwrap();
        let before = p.resolve("solve").unwrap();
        let idx = p.reload(Arc::new(bin.dsos[0].clone())).unwrap();
        let after = p.resolve("solve").unwrap();
        assert_eq!(after.object, idx);
        assert_ne!(after.addr, before.addr, "rebuilt object gets a new base");
        // Still resolves ahead of libtools.so (order preserved).
        assert_eq!(p.num_loaded(), 3);
    }

    #[test]
    fn scripted_dlopen_fault_fires_once_and_leaves_state_clean() {
        let bin = binary();
        let mut p = Process::launch_binary(&bin).unwrap();
        p.dlclose("libtools.so").unwrap();
        let calls = p.dlopen_calls();
        let mut plan = FaultPlan::new();
        plan.push(calls, FaultKind::PartialLoad);
        p.set_fault_plan(plan);
        let regions_before = p.memory.regions().len();
        let err = p.dlopen(Arc::new(bin.dsos[1].clone())).unwrap_err();
        assert_eq!(err.kind(), "partial_load");
        // Rollback: no leaked mapping, and the retry succeeds.
        assert_eq!(p.memory.regions().len(), regions_before);
        assert_eq!(p.fired_faults().len(), 1);
        assert_eq!(p.fired_faults()[0].at, calls);
        p.dlopen(Arc::new(bin.dsos[1].clone())).unwrap();
        assert_eq!(p.fired_faults().len(), 1, "each fault fires exactly once");
    }
}
