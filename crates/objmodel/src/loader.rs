//! Simulated process and dynamic loader.
//!
//! The paper's DynCaPI resolves symbols by "examining the virtual memory
//! layout of the running process" and translating per-object symbol
//! addresses to their mapped locations (§V-C1, symbol injection). This
//! module provides that substrate: objects are loaded at page-aligned
//! base addresses (DSOs at *relocated* bases — which is why trampolines
//! must be position-independent, §V-B2), symbols are bound in dynamic-
//! linker resolution order, and the process can produce a
//! `/proc/<pid>/maps`-style listing.

use crate::memory::{AddressSpace, MemError, PagePerms, PAGE_SIZE};
use crate::object::{Binary, Object, ObjectKind};
use std::fmt;
use std::sync::Arc;

/// Preferred base of the main executable.
pub const EXE_BASE: u64 = 0x0040_0000;
/// Base of the DSO mapping area; every DSO is relocated here, away from
/// its preferred (link-time) base of 0.
pub const DSO_AREA: u64 = 0x7f00_0000_0000;
/// Gap between consecutive DSO mappings.
const DSO_STRIDE: u64 = 0x0100_0000;

/// Resolved function location.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuncAddr {
    /// Index into the process' loaded-object list (0 = executable).
    pub object: usize,
    /// Function index within the object.
    pub func: u32,
    /// Absolute virtual address.
    pub addr: u64,
}

/// Loader errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadError {
    /// Mapping failed.
    Mem(MemError),
    /// `dlclose` on an object that is not loaded.
    NotLoaded(String),
    /// `dlopen` of an already-loaded object.
    AlreadyLoaded(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Mem(e) => write!(f, "mapping failure: {e}"),
            LoadError::NotLoaded(n) => write!(f, "object `{n}` is not loaded"),
            LoadError::AlreadyLoaded(n) => write!(f, "object `{n}` is already loaded"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<MemError> for LoadError {
    fn from(e: MemError) -> Self {
        LoadError::Mem(e)
    }
}

/// One loaded object: shared image + its base address.
#[derive(Clone, Debug)]
pub struct LoadedObject {
    /// The object image (shared; images are immutable once compiled).
    pub image: Arc<Object>,
    /// Load base address.
    pub base: u64,
    /// Whether the object was loaded at its preferred base (true only
    /// for the executable). Relocated objects require GOT-relative
    /// addressing in trampolines.
    pub at_preferred_base: bool,
}

impl LoadedObject {
    /// Absolute address of a function.
    pub fn func_addr(&self, idx: u32) -> u64 {
        self.base + self.image.function(idx).offset
    }
}

/// A `/proc/<pid>/maps`-style entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapEntry {
    /// Mapping base.
    pub base: u64,
    /// Mapping length.
    pub len: u64,
    /// Backing object name.
    pub path: String,
}

/// The simulated process.
#[derive(Clone, Debug)]
pub struct Process {
    /// Loaded objects; index 0 is always the executable.
    objects: Vec<Option<LoadedObject>>,
    /// The address space with page permissions.
    pub memory: AddressSpace,
    next_dso_slot: u64,
}

impl Process {
    /// Creates a process with `exe` mapped at its preferred base.
    pub fn launch(exe: Arc<Object>) -> Result<Self, LoadError> {
        assert_eq!(
            exe.kind,
            ObjectKind::Executable,
            "launch requires an executable"
        );
        let mut memory = AddressSpace::new();
        memory.map(EXE_BASE, exe.code_size.max(1), PagePerms::RX, &exe.name)?;
        Ok(Self {
            objects: vec![Some(LoadedObject {
                image: exe,
                base: EXE_BASE,
                at_preferred_base: true,
            })],
            memory,
            next_dso_slot: 0,
        })
    }

    /// Convenience: launches a process and `dlopen`s every DSO of `bin`
    /// (the usual `ld.so` startup for NEEDED entries).
    pub fn launch_binary(bin: &Binary) -> Result<Self, LoadError> {
        let mut p = Self::launch(Arc::new(bin.executable.clone()))?;
        for dso in &bin.dsos {
            p.dlopen(Arc::new(dso.clone()))?;
        }
        Ok(p)
    }

    /// Loads a shared object at a relocated base; returns its index.
    pub fn dlopen(&mut self, dso: Arc<Object>) -> Result<usize, LoadError> {
        if self.loaded_index(&dso.name).is_some() {
            return Err(LoadError::AlreadyLoaded(dso.name.clone()));
        }
        let base = DSO_AREA + self.next_dso_slot * DSO_STRIDE;
        self.next_dso_slot += 1;
        self.memory
            .map(base, dso.code_size.max(1), PagePerms::RX, &dso.name)?;
        let entry = LoadedObject {
            image: dso,
            base,
            at_preferred_base: false,
        };
        // Reuse a vacated slot if any (dlclose leaves holes so indices of
        // other objects remain stable).
        if let Some(i) = self.objects.iter().position(Option::is_none) {
            self.objects[i] = Some(entry);
            Ok(i)
        } else {
            self.objects.push(Some(entry));
            Ok(self.objects.len() - 1)
        }
    }

    /// Unloads a shared object by name.
    pub fn dlclose(&mut self, name: &str) -> Result<(), LoadError> {
        let idx = self
            .loaded_index(name)
            .ok_or_else(|| LoadError::NotLoaded(name.to_string()))?;
        assert!(idx != 0, "cannot dlclose the main executable");
        let obj = self.objects[idx].take().expect("index from loaded_index");
        self.memory.unmap(obj.base)?;
        Ok(())
    }

    /// Index of a loaded object by name.
    pub fn loaded_index(&self, name: &str) -> Option<usize> {
        self.objects
            .iter()
            .position(|o| o.as_ref().is_some_and(|o| o.image.name == name))
    }

    /// Loaded object by index (None if unloaded).
    pub fn object(&self, idx: usize) -> Option<&LoadedObject> {
        self.objects.get(idx).and_then(Option::as_ref)
    }

    /// All currently loaded objects with their indices.
    pub fn loaded(&self) -> impl Iterator<Item = (usize, &LoadedObject)> {
        self.objects
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.as_ref().map(|o| (i, o)))
    }

    /// Number of loaded objects.
    pub fn num_loaded(&self) -> usize {
        self.objects.iter().flatten().count()
    }

    /// Resolves `name` in dynamic-linker order: executable first, then
    /// DSOs in load order. Only *emitted* function bodies resolve.
    pub fn resolve(&self, name: &str) -> Option<FuncAddr> {
        for (i, o) in self.loaded() {
            if let Some(fi) = o.image.function_index(name) {
                return Some(FuncAddr {
                    object: i,
                    func: fi,
                    addr: o.func_addr(fi),
                });
            }
        }
        None
    }

    /// Reverse lookup: which function contains `addr`?
    pub fn function_at(&self, addr: u64) -> Option<FuncAddr> {
        for (i, o) in self.loaded() {
            if addr >= o.base && addr < o.base + o.image.code_size {
                if let Some((fi, _)) = o.image.function_at_offset(addr - o.base) {
                    return Some(FuncAddr {
                        object: i,
                        func: fi,
                        addr: o.func_addr(fi),
                    });
                }
            }
        }
        None
    }

    /// `/proc/<pid>/maps`-style listing, ascending by base.
    pub fn memory_map(&self) -> Vec<MapEntry> {
        let mut entries: Vec<MapEntry> = self
            .loaded()
            .map(|(_, o)| MapEntry {
                base: o.base,
                len: o.image.code_size.div_ceil(PAGE_SIZE).max(1) * PAGE_SIZE,
                path: o.image.name.clone(),
            })
            .collect();
        entries.sort_by_key(|e| e.base);
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, CompileOptions};
    use capi_appmodel::{LinkTarget, ProgramBuilder};

    fn binary() -> Binary {
        let mut b = ProgramBuilder::new("app");
        b.unit("m.cc", LinkTarget::Executable);
        b.function("main")
            .main()
            .statements(50)
            .calls("solve", 1)
            .finish();
        b.unit("s.cc", LinkTarget::Dso("libsolver.so".into()));
        b.function("solve")
            .statements(60)
            .instructions(400)
            .finish();
        b.unit("t.cc", LinkTarget::Dso("libtools.so".into()));
        b.function("tool").statements(60).instructions(300).finish();
        let p = b.build().unwrap();
        compile(&p, &CompileOptions::o2()).unwrap()
    }

    #[test]
    fn launch_binary_loads_everything() {
        let bin = binary();
        let p = Process::launch_binary(&bin).unwrap();
        assert_eq!(p.num_loaded(), 3);
        assert!(p.object(0).unwrap().at_preferred_base);
        assert!(!p.object(1).unwrap().at_preferred_base);
    }

    #[test]
    fn resolution_order_is_exe_first_then_load_order() {
        let bin = binary();
        let p = Process::launch_binary(&bin).unwrap();
        let main = p.resolve("main").unwrap();
        assert_eq!(main.object, 0);
        let solve = p.resolve("solve").unwrap();
        assert_eq!(solve.object, 1);
        assert!(solve.addr >= DSO_AREA);
        assert!(p.resolve("nonexistent").is_none());
    }

    #[test]
    fn function_at_reverse_lookup() {
        let bin = binary();
        let p = Process::launch_binary(&bin).unwrap();
        let solve = p.resolve("solve").unwrap();
        let back = p.function_at(solve.addr + 4).unwrap();
        assert_eq!(back.func, solve.func);
        assert_eq!(back.object, solve.object);
        assert!(p.function_at(0xdead_beef_0000).is_none());
    }

    #[test]
    fn dlclose_unloads_and_slot_is_reused() {
        let bin = binary();
        let mut p = Process::launch_binary(&bin).unwrap();
        p.dlclose("libsolver.so").unwrap();
        assert_eq!(p.num_loaded(), 2);
        assert!(p.resolve("solve").is_none());
        // Reload into the vacated slot.
        let idx = p.dlopen(Arc::new(bin.dsos[0].clone())).unwrap();
        assert_eq!(idx, 1);
        assert!(p.resolve("solve").is_some());
    }

    #[test]
    fn dlopen_twice_fails() {
        let bin = binary();
        let mut p = Process::launch_binary(&bin).unwrap();
        assert!(matches!(
            p.dlopen(Arc::new(bin.dsos[0].clone())),
            Err(LoadError::AlreadyLoaded(_))
        ));
    }

    #[test]
    fn memory_map_lists_all_objects_sorted() {
        let bin = binary();
        let p = Process::launch_binary(&bin).unwrap();
        let map = p.memory_map();
        assert_eq!(map.len(), 3);
        assert_eq!(map[0].path, "app");
        assert!(map.windows(2).all(|w| w[0].base < w[1].base));
    }

    #[test]
    fn dso_bases_do_not_collide() {
        let bin = binary();
        let p = Process::launch_binary(&bin).unwrap();
        let bases: Vec<u64> = p.loaded().map(|(_, o)| o.base).collect();
        let mut dedup = bases.clone();
        dedup.dedup();
        assert_eq!(bases.len(), dedup.len());
    }
}
