//! Semantic analysis: reference resolution and selector signatures.

use crate::ast::{Arg, Expr, Item, Spec};
use std::collections::HashSet;
use std::fmt;

/// Argument types a selector can take.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArgTy {
    /// String literal (comparison operator, regex, glob).
    Str,
    /// Integer literal.
    Int,
    /// Selector (nested expression, `%ref` or `%%`).
    Sel,
}

/// A selector type's signature.
#[derive(Clone, Copy, Debug)]
pub struct Signature {
    /// Required leading arguments.
    pub required: &'static [ArgTy],
    /// Optional trailing arguments.
    pub optional: &'static [ArgTy],
    /// Additionally accepted variadic tail (unbounded).
    pub variadic: Option<ArgTy>,
}

const SEL: ArgTy = ArgTy::Sel;
const STR: ArgTy = ArgTy::Str;
const INT: ArgTy = ArgTy::Int;

/// Looks up the signature of a selector type; `None` = unknown selector.
pub fn signature(name: &str) -> Option<Signature> {
    let sig = |required, optional, variadic| Signature {
        required,
        optional,
        variadic,
    };
    Some(match name {
        "join" => sig(&[SEL], &[], Some(SEL)),
        "intersect" => sig(&[SEL, SEL], &[], Some(SEL)),
        "subtract" => sig(&[SEL, SEL], &[], None),
        "complement" => sig(&[SEL], &[], None),
        "byName" => sig(&[STR, SEL], &[], None),
        "byPath" => sig(&[STR, SEL], &[], None),
        "inObject" => sig(&[STR, SEL], &[], None),
        "inSystemHeader" | "inlineSpecified" | "virtualMethods" | "addressTaken" | "hidden"
        | "definitions" | "declarations" | "mpiFunctions" | "staticInitializers" => {
            sig(&[SEL], &[], None)
        }
        "flops" | "loopDepth" | "statements" | "loc" | "instructions" => {
            sig(&[STR, INT, SEL], &[], None)
        }
        "onCallPathTo" | "onCallPathFrom" | "reaching" | "callers" | "callees" => {
            sig(&[SEL], &[], None)
        }
        "statementAggregation" => sig(&[INT], &[SEL], None),
        "sample" => sig(&[INT, SEL], &[], None),
        "coarse" => sig(&[SEL], &[SEL], None),
        "entry" => sig(&[], &[], None),
        _ => return None,
    })
}

/// All selector names (for error messages and docs).
pub fn selector_names() -> &'static [&'static str] {
    &[
        "join",
        "intersect",
        "subtract",
        "complement",
        "byName",
        "byPath",
        "inObject",
        "inSystemHeader",
        "inlineSpecified",
        "virtualMethods",
        "addressTaken",
        "hidden",
        "definitions",
        "declarations",
        "mpiFunctions",
        "staticInitializers",
        "flops",
        "loopDepth",
        "statements",
        "loc",
        "instructions",
        "onCallPathTo",
        "onCallPathFrom",
        "reaching",
        "callers",
        "callees",
        "statementAggregation",
        "sample",
        "coarse",
        "entry",
    ]
}

/// Semantic errors.
#[derive(Clone, Debug, PartialEq)]
pub enum SemaError {
    /// The spec has no items.
    Empty,
    /// `%name` refers to an instance not defined before use.
    UndefinedRef {
        /// The missing name.
        name: String,
    },
    /// Two instances share a name.
    DuplicateDefinition {
        /// The duplicated name.
        name: String,
    },
    /// Unknown selector type.
    UnknownSelector {
        /// The unknown name.
        name: String,
    },
    /// Wrong number of arguments.
    Arity {
        /// Selector name.
        selector: String,
        /// Expected description.
        expected: String,
        /// Actual count.
        got: usize,
    },
    /// Argument of the wrong type.
    ArgType {
        /// Selector name.
        selector: String,
        /// 0-based argument index.
        index: usize,
        /// Expected type.
        expected: ArgTy,
    },
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemaError::Empty => write!(f, "specification has no selector instances"),
            SemaError::UndefinedRef { name } => write!(f, "undefined reference `%{name}`"),
            SemaError::DuplicateDefinition { name } => {
                write!(f, "duplicate definition of `{name}`")
            }
            SemaError::UnknownSelector { name } => write!(f, "unknown selector `{name}`"),
            SemaError::Arity {
                selector,
                expected,
                got,
            } => write!(f, "`{selector}` expects {expected} arguments, got {got}"),
            SemaError::ArgType {
                selector,
                index,
                expected,
            } => write!(
                f,
                "`{selector}` argument {} must be a {expected:?}",
                index + 1
            ),
        }
    }
}

impl std::error::Error for SemaError {}

fn arg_ty(a: &Arg) -> ArgTy {
    match a {
        Arg::Str(_) => ArgTy::Str,
        Arg::Int(_) | Arg::Float(_) => ArgTy::Int,
        Arg::Expr(_) => ArgTy::Sel,
    }
}

fn check_expr(e: &Expr, defined: &HashSet<&str>) -> Result<(), SemaError> {
    match e {
        Expr::All(_) => Ok(()),
        Expr::Ref(name, _) => {
            if defined.contains(name.as_str()) {
                Ok(())
            } else {
                Err(SemaError::UndefinedRef { name: name.clone() })
            }
        }
        Expr::Call { name, args, .. } => {
            let sig =
                signature(name).ok_or_else(|| SemaError::UnknownSelector { name: name.clone() })?;
            let min = sig.required.len();
            let max = if sig.variadic.is_some() {
                usize::MAX
            } else {
                min + sig.optional.len()
            };
            if args.len() < min || args.len() > max {
                let expected = if sig.variadic.is_some() {
                    format!("at least {min}")
                } else if sig.optional.is_empty() {
                    format!("{min}")
                } else {
                    format!("{min} to {max}")
                };
                return Err(SemaError::Arity {
                    selector: name.clone(),
                    expected,
                    got: args.len(),
                });
            }
            for (i, a) in args.iter().enumerate() {
                let expected = if i < sig.required.len() {
                    sig.required[i]
                } else if i < sig.required.len() + sig.optional.len() {
                    sig.optional[i - sig.required.len()]
                } else {
                    sig.variadic.expect("arity checked above")
                };
                if arg_ty(a) != expected {
                    return Err(SemaError::ArgType {
                        selector: name.clone(),
                        index: i,
                        expected,
                    });
                }
                if let Arg::Expr(sub) = a {
                    check_expr(sub, defined)?;
                }
            }
            Ok(())
        }
    }
}

/// Checks a (module-resolved) spec: definition order, reference
/// resolution, selector signatures.
pub fn check(spec: &Spec) -> Result<(), SemaError> {
    if spec.items.is_empty() {
        return Err(SemaError::Empty);
    }
    let mut defined: HashSet<&str> = HashSet::new();
    for Item { name, expr } in &spec.items {
        check_expr(expr, &defined)?;
        if let Some(n) = name {
            if !defined.insert(n.as_str()) {
                return Err(SemaError::DuplicateDefinition { name: n.clone() });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules::ModuleRegistry;
    use crate::parser::parse;

    #[test]
    fn listing1_checks_clean() {
        let reg = ModuleRegistry::with_builtins();
        let spec = reg
            .load(
                r#"
!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
kernels = flops(">=", 10, loopDepth(">=" 1, %%))
join(subtract(%kernels, %excluded), %mpi_comm)
"#,
            )
            .unwrap();
        assert!(check(&spec).is_ok());
    }

    #[test]
    fn undefined_ref_detected() {
        let spec = parse("join(%ghost, %%)").unwrap();
        assert_eq!(
            check(&spec),
            Err(SemaError::UndefinedRef {
                name: "ghost".into()
            })
        );
    }

    #[test]
    fn forward_references_rejected() {
        let spec = parse("a = complement(%b)\nb = inSystemHeader(%%)\n%b").unwrap();
        assert!(matches!(check(&spec), Err(SemaError::UndefinedRef { .. })));
    }

    #[test]
    fn duplicate_names_rejected() {
        let spec = parse("a = %%\na = %%\n%a").unwrap();
        assert!(matches!(
            check(&spec),
            Err(SemaError::DuplicateDefinition { .. })
        ));
    }

    #[test]
    fn unknown_selector_rejected() {
        let spec = parse("frobnicate(%%)").unwrap();
        assert!(matches!(
            check(&spec),
            Err(SemaError::UnknownSelector { .. })
        ));
    }

    #[test]
    fn arity_and_types_checked() {
        assert!(matches!(
            check(&parse("subtract(%%)").unwrap()),
            Err(SemaError::Arity { .. })
        ));
        assert!(matches!(
            check(&parse("flops(10, \">=\", %%)").unwrap()),
            Err(SemaError::ArgType { .. })
        ));
        assert!(matches!(
            check(&parse("byName(%%, %%)").unwrap()),
            Err(SemaError::ArgType { .. })
        ));
        // join is variadic.
        assert!(check(&parse("join(%%, %%, %%, %%)").unwrap()).is_ok());
        // sample takes a rate then a selector, both required.
        assert!(check(&parse("sample(4, %%)").unwrap()).is_ok());
        assert!(matches!(
            check(&parse("sample(%%)").unwrap()),
            Err(SemaError::Arity { .. })
        ));
        assert!(matches!(
            check(&parse("sample(%%, 4)").unwrap()),
            Err(SemaError::ArgType { .. })
        ));
        // coarse takes an optional critical selector.
        assert!(check(&parse("coarse(%%)").unwrap()).is_ok());
        assert!(check(&parse("coarse(%%, entry())").unwrap()).is_ok());
        assert!(matches!(
            check(&parse("coarse(%%, %%, %%)").unwrap()),
            Err(SemaError::Arity { .. })
        ));
    }

    #[test]
    fn empty_spec_rejected() {
        assert_eq!(check(&parse("").unwrap()), Err(SemaError::Empty));
    }

    #[test]
    fn every_advertised_selector_has_a_signature() {
        for name in selector_names() {
            assert!(signature(name).is_some(), "{name} missing");
        }
    }
}
