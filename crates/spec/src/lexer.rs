//! Tokenizer for the CaPI specification language.

use std::fmt;

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// An identifier (selector type or instance name).
    Ident(String),
    /// A double-quoted string literal (quotes stripped).
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// `%name` — reference to a selector instance.
    Ref(String),
    /// `%%` — the set of all functions.
    All,
    /// `!import` keyword.
    Import,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token kind.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Lexer errors.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == ':'
}

/// Tokenizes `source` (comments start with `#` and run to end of line).
pub fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let mut chars = source.chars().peekable();
    let (mut line, mut col) = (1usize, 1usize);

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }

    while let Some(&c) = chars.peek() {
        let (tline, tcol) = (line, col);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '(' => {
                bump!();
                out.push(Token {
                    kind: TokenKind::LParen,
                    line: tline,
                    col: tcol,
                });
            }
            ')' => {
                bump!();
                out.push(Token {
                    kind: TokenKind::RParen,
                    line: tline,
                    col: tcol,
                });
            }
            ',' => {
                bump!();
                out.push(Token {
                    kind: TokenKind::Comma,
                    line: tline,
                    col: tcol,
                });
            }
            '=' => {
                bump!();
                out.push(Token {
                    kind: TokenKind::Eq,
                    line: tline,
                    col: tcol,
                });
            }
            '%' => {
                bump!();
                if chars.peek() == Some(&'%') {
                    bump!();
                    out.push(Token {
                        kind: TokenKind::All,
                        line: tline,
                        col: tcol,
                    });
                } else {
                    let mut name = String::new();
                    while let Some(&c) = chars.peek() {
                        if is_ident_cont(c) {
                            name.push(c);
                            bump!();
                        } else {
                            break;
                        }
                    }
                    if name.is_empty() {
                        return Err(LexError {
                            message: "expected instance name after `%`".into(),
                            line: tline,
                            col: tcol,
                        });
                    }
                    out.push(Token {
                        kind: TokenKind::Ref(name),
                        line: tline,
                        col: tcol,
                    });
                }
            }
            '!' => {
                bump!();
                let mut kw = String::new();
                while let Some(&c) = chars.peek() {
                    if is_ident_cont(c) {
                        kw.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                if kw != "import" {
                    return Err(LexError {
                        message: format!("unknown directive `!{kw}`"),
                        line: tline,
                        col: tcol,
                    });
                }
                out.push(Token {
                    kind: TokenKind::Import,
                    line: tline,
                    col: tcol,
                });
            }
            '"' => {
                bump!();
                let mut s = String::new();
                let mut closed = false;
                while let Some(c) = bump!() {
                    if c == '"' {
                        closed = true;
                        break;
                    }
                    if c == '\\' {
                        match bump!() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some(other) => s.push(other),
                            None => break,
                        }
                    } else {
                        s.push(c);
                    }
                }
                if !closed {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        line: tline,
                        col: tcol,
                    });
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    line: tline,
                    col: tcol,
                });
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut text = String::new();
                text.push(c);
                bump!();
                let mut is_float = false;
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        bump!();
                    } else if c == '.' && !is_float {
                        is_float = true;
                        text.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| LexError {
                        message: format!("bad float literal `{text}`"),
                        line: tline,
                        col: tcol,
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| LexError {
                        message: format!("bad integer literal `{text}`"),
                        line: tline,
                        col: tcol,
                    })?)
                };
                out.push(Token {
                    kind,
                    line: tline,
                    col: tcol,
                });
            }
            c if is_ident_start(c) => {
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if is_ident_cont(c) {
                        name.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Ident(name),
                    line: tline,
                    col: tcol,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    line: tline,
                    col: tcol,
                });
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn listing1_tokens() {
        let toks = kinds("!import(\"mpi.capi\")\nkernels = flops(\">=\", 10, %%)");
        assert_eq!(
            toks,
            vec![
                TokenKind::Import,
                TokenKind::LParen,
                TokenKind::Str("mpi.capi".into()),
                TokenKind::RParen,
                TokenKind::Ident("kernels".into()),
                TokenKind::Eq,
                TokenKind::Ident("flops".into()),
                TokenKind::LParen,
                TokenKind::Str(">=".into()),
                TokenKind::Comma,
                TokenKind::Int(10),
                TokenKind::Comma,
                TokenKind::All,
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn refs_and_all() {
        assert_eq!(
            kinds("%kernels %%"),
            vec![
                TokenKind::Ref("kernels".into()),
                TokenKind::All,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("# a comment\nfoo # trailing\n"),
            vec![TokenKind::Ident("foo".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 -7 3.5"),
            vec![
                TokenKind::Int(42),
                TokenKind::Int(-7),
                TokenKind::Float(3.5),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#""a\"b\n""#),
            vec![TokenKind::Str("a\"b\n".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn errors_carry_positions() {
        let err = tokenize("foo\n  @").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.col, 3);
        assert!(tokenize("\"open").is_err());
        assert!(tokenize("!frobnicate(\"x\")").is_err());
        assert!(tokenize("% ").is_err());
    }
}
