//! Recursive-descent parser.
//!
//! Argument commas are optional: the paper's own Listing 1 contains
//! `loopDepth(">=" 1, %%)` (missing comma), so the grammar accepts
//! whitespace-separated arguments.

use crate::ast::{Arg, Expr, Item, Span, Spec};
use crate::lexer::{tokenize, LexError, Token, TokenKind};
use std::fmt;

/// Parse errors.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let t = self.peek();
        Err(ParseError {
            message: message.into(),
            line: t.line,
            col: t.col,
        })
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token, ParseError> {
        if std::mem::discriminant(&self.peek().kind) == std::mem::discriminant(kind) {
            Ok(self.bump())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek().kind))
        }
    }

    fn parse_spec(&mut self) -> Result<Spec, ParseError> {
        let mut spec = Spec::default();
        loop {
            match &self.peek().kind {
                TokenKind::Eof => break,
                TokenKind::Import => {
                    self.bump();
                    self.expect(&TokenKind::LParen, "`(`")?;
                    let t = self.expect(&TokenKind::Str(String::new()), "module name string")?;
                    if let TokenKind::Str(s) = t.kind {
                        spec.imports.push(s);
                    }
                    self.expect(&TokenKind::RParen, "`)`")?;
                }
                TokenKind::Ident(_) => {
                    // Either `name = expr` or a bare call expression.
                    if matches!(self.tokens[self.pos + 1].kind, TokenKind::Eq) {
                        let t = self.bump();
                        let name = match t.kind {
                            TokenKind::Ident(n) => n,
                            _ => unreachable!("checked ident"),
                        };
                        self.bump(); // `=`
                        let expr = self.parse_expr()?;
                        spec.items.push(Item {
                            name: Some(name),
                            expr,
                        });
                    } else {
                        let expr = self.parse_expr()?;
                        spec.items.push(Item { name: None, expr });
                    }
                }
                TokenKind::Ref(_) | TokenKind::All => {
                    let expr = self.parse_expr()?;
                    spec.items.push(Item { name: None, expr });
                }
                other => return self.err(format!("unexpected token {other:?}")),
            }
        }
        Ok(spec)
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let t = self.peek().clone();
        let span = Span {
            line: t.line,
            col: t.col,
        };
        match t.kind {
            TokenKind::All => {
                self.bump();
                Ok(Expr::All(span))
            }
            TokenKind::Ref(name) => {
                self.bump();
                Ok(Expr::Ref(name, span))
            }
            TokenKind::Ident(name) => {
                self.bump();
                self.expect(&TokenKind::LParen, "`(` after selector name")?;
                let mut args = Vec::new();
                loop {
                    // Optional separators.
                    while matches!(self.peek().kind, TokenKind::Comma) {
                        self.bump();
                    }
                    if matches!(self.peek().kind, TokenKind::RParen) {
                        self.bump();
                        break;
                    }
                    if matches!(self.peek().kind, TokenKind::Eof) {
                        return self.err("unterminated argument list");
                    }
                    args.push(self.parse_arg()?);
                }
                Ok(Expr::Call { name, args, span })
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }

    fn parse_arg(&mut self) -> Result<Arg, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Str(s) => {
                self.bump();
                Ok(Arg::Str(s))
            }
            TokenKind::Int(n) => {
                self.bump();
                Ok(Arg::Int(n))
            }
            TokenKind::Float(x) => {
                self.bump();
                Ok(Arg::Float(x))
            }
            TokenKind::Ident(_) | TokenKind::Ref(_) | TokenKind::All => {
                Ok(Arg::Expr(self.parse_expr()?))
            }
            other => self.err(format!("expected argument, found {other:?}")),
        }
    }
}

/// Parses a specification source text.
pub fn parse(source: &str) -> Result<Spec, ParseError> {
    let tokens = tokenize(source)?;
    let mut p = Parser { tokens, pos: 0 };
    p.parse_spec()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Listing 1, verbatim (including its missing comma).
    pub const LISTING_1: &str = r#"
!import("mpi.capi")
excluded = join(inSystemHeader(%%),
inlineSpecified(%%))
kernels = flops(">=", 10, loopDepth(">=" 1, %%))
join(subtract(%kernels, %excluded), %mpi_comm)
"#;

    #[test]
    fn parses_listing_1() {
        let spec = parse(LISTING_1).unwrap();
        assert_eq!(spec.imports, vec!["mpi.capi".to_string()]);
        assert_eq!(spec.items.len(), 3);
        assert_eq!(spec.items[0].name.as_deref(), Some("excluded"));
        assert_eq!(spec.items[1].name.as_deref(), Some("kernels"));
        assert!(spec.items[2].name.is_none());
        // Entry point is the final anonymous join.
        match &spec.entry().unwrap().expr {
            Expr::Call { name, args, .. } => {
                assert_eq!(name, "join");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected entry {other:?}"),
        }
    }

    #[test]
    fn optional_commas() {
        let a = parse(r#"flops(">=", 10, %%)"#).unwrap();
        let b = parse(r#"flops(">=" 10 %%)"#).unwrap();
        // Spans differ; structural equality is checked via printing.
        assert_eq!(a.items[0].expr.to_string(), b.items[0].expr.to_string());
    }

    #[test]
    fn nested_calls() {
        let spec = parse("join(subtract(%a, %b), inSystemHeader(%%))").unwrap();
        match &spec.items[0].expr {
            Expr::Call { args, .. } => {
                assert!(
                    matches!(&args[0], Arg::Expr(Expr::Call { name, .. }) if name == "subtract")
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_argument_list() {
        let spec = parse("entry()").unwrap();
        match &spec.items[0].expr {
            Expr::Call { args, .. } => assert!(args.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_are_positioned() {
        let err = parse("foo(").unwrap_err();
        assert!(err.message.contains("unterminated"));
        let err = parse("= x").unwrap_err();
        assert!(err.line >= 1);
        assert!(parse("foo)").is_err());
    }

    #[test]
    fn pretty_print_reparses_identically() {
        let spec = parse(LISTING_1).unwrap();
        let printed = spec.to_string();
        let reparsed = parse(&printed).unwrap();
        // Fixed point: printing the reparsed spec reproduces the text.
        assert_eq!(printed, reparsed.to_string());
    }

    #[test]
    fn bare_ref_as_entry() {
        let spec = parse("a = inSystemHeader(%%)\n%a").unwrap();
        assert_eq!(spec.items.len(), 2);
        assert!(matches!(&spec.entry().unwrap().expr, Expr::Ref(n, _) if n == "a"));
    }
}
