//! A compact regular-expression engine for the `byName` selector.
//!
//! CaPI selects functions by name with regexes (the built-in `mpi.capi`
//! module uses `^MPI_`). This workspace builds against a fixed
//! dependency allowlist, so a small engine is implemented here.
//!
//! Supported syntax: literals, `.`, `*`, `+`, `?`, character classes
//! `[a-z]` / `[^…]`, anchors `^` `$`, alternation `|`, groups `(…)`.
//! Matching is backtracking over a parsed AST with *search* semantics:
//! the pattern may match anywhere unless anchored.

use std::fmt;

/// Regex compilation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegexError {
    /// Description.
    pub message: String,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error: {}", self.message)
    }
}

impl std::error::Error for RegexError {}

#[derive(Clone, Debug, PartialEq)]
enum Node {
    Char(char),
    Any,
    Class {
        neg: bool,
        ranges: Vec<(char, char)>,
    },
    Repeat {
        node: Box<Node>,
        min: u32,
        max: Option<u32>,
    },
    Group(Vec<Vec<Node>>), // alternation of sequences
    Start,
    End,
}

/// A compiled regular expression.
#[derive(Clone, Debug, PartialEq)]
pub struct Regex {
    alts: Vec<Vec<Node>>,
    source: String,
}

struct RegexParser {
    chars: Vec<char>,
    pos: usize,
}

impl RegexParser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn err<T>(&self, m: impl Into<String>) -> Result<T, RegexError> {
        Err(RegexError { message: m.into() })
    }

    /// alternation := sequence ('|' sequence)*
    fn parse_alternation(&mut self) -> Result<Vec<Vec<Node>>, RegexError> {
        let mut alts = vec![self.parse_sequence()?];
        while self.peek() == Some('|') {
            self.bump();
            alts.push(self.parse_sequence()?);
        }
        Ok(alts)
    }

    fn parse_sequence(&mut self) -> Result<Vec<Node>, RegexError> {
        let mut seq = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom()?;
            let node = self.parse_quantifier(atom)?;
            seq.push(node);
        }
        Ok(seq)
    }

    fn parse_atom(&mut self) -> Result<Node, RegexError> {
        match self.bump() {
            Some('.') => Ok(Node::Any),
            Some('^') => Ok(Node::Start),
            Some('$') => Ok(Node::End),
            Some('(') => {
                let alts = self.parse_alternation()?;
                if self.bump() != Some(')') {
                    return self.err("unclosed group");
                }
                Ok(Node::Group(alts))
            }
            Some('[') => self.parse_class(),
            Some('\\') => match self.bump() {
                Some('d') => Ok(Node::Class {
                    neg: false,
                    ranges: vec![('0', '9')],
                }),
                Some('w') => Ok(Node::Class {
                    neg: false,
                    ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                }),
                Some('s') => Ok(Node::Class {
                    neg: false,
                    ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n')],
                }),
                Some(c) => Ok(Node::Char(c)),
                None => self.err("dangling escape"),
            },
            Some(c) if c == '*' || c == '+' || c == '?' => {
                self.err(format!("dangling quantifier `{c}`"))
            }
            Some(c) => Ok(Node::Char(c)),
            None => self.err("unexpected end of pattern"),
        }
    }

    fn parse_quantifier(&mut self, atom: Node) -> Result<Node, RegexError> {
        let q = match self.peek() {
            Some('*') => Some((0, None)),
            Some('+') => Some((1, None)),
            Some('?') => Some((0, Some(1))),
            _ => None,
        };
        match q {
            Some((min, max)) => {
                self.bump();
                if matches!(atom, Node::Start | Node::End) {
                    return self.err("quantifier on anchor");
                }
                Ok(Node::Repeat {
                    node: Box::new(atom),
                    min,
                    max,
                })
            }
            None => Ok(atom),
        }
    }

    fn parse_class(&mut self) -> Result<Node, RegexError> {
        let neg = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges = Vec::new();
        loop {
            match self.bump() {
                None => return self.err("unclosed character class"),
                Some(']') if !ranges.is_empty() || neg => break,
                Some(']') => break, // empty class: matches nothing
                Some('\\') => {
                    let c = self.bump().ok_or(RegexError {
                        message: "dangling escape in class".into(),
                    })?;
                    ranges.push((c, c));
                }
                Some(c) => {
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).copied() != Some(']')
                        && self.chars.get(self.pos + 1).is_some()
                    {
                        self.bump(); // '-'
                        let hi = self.bump().expect("checked above");
                        if hi < c {
                            return self.err(format!("invalid range {c}-{hi}"));
                        }
                        ranges.push((c, hi));
                    } else {
                        ranges.push((c, c));
                    }
                }
            }
        }
        Ok(Node::Class { neg, ranges })
    }
}

impl Regex {
    /// Compiles `pattern`.
    pub fn new(pattern: &str) -> Result<Self, RegexError> {
        let mut p = RegexParser {
            chars: pattern.chars().collect(),
            pos: 0,
        };
        let alts = p.parse_alternation()?;
        if p.pos != p.chars.len() {
            return Err(RegexError {
                message: format!("unexpected `{}`", p.chars[p.pos]),
            });
        }
        Ok(Self {
            alts,
            source: pattern.to_string(),
        })
    }

    /// The original pattern text.
    pub fn as_str(&self) -> &str {
        &self.source
    }

    /// Search semantics: does the pattern match anywhere in `text`?
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        for start in 0..=chars.len() {
            for alt in &self.alts {
                if match_seq(alt, &chars, start, start == 0).is_some() {
                    return true;
                }
            }
            // `^`-anchored alternatives can only match at 0, but others
            // may match later; keep scanning.
        }
        false
    }
}

/// Matches `seq` against `chars[pos..]`, returning the end position.
/// `at_start` tells whether `pos` is the true string start (for `^`).
fn match_seq(seq: &[Node], chars: &[char], pos: usize, at_start: bool) -> Option<usize> {
    let Some((first, rest)) = seq.split_first() else {
        return Some(pos);
    };
    match first {
        Node::Start => {
            // `pos` is always an index into the full subject string, so
            // position 0 *is* the string start.
            if pos == 0 {
                match_seq(rest, chars, pos, at_start)
            } else {
                None
            }
        }
        Node::End => {
            if pos == chars.len() {
                match_seq(rest, chars, pos, at_start)
            } else {
                None
            }
        }
        Node::Char(c) => {
            if chars.get(pos) == Some(c) {
                match_seq(rest, chars, pos + 1, at_start)
            } else {
                None
            }
        }
        Node::Any => {
            if pos < chars.len() {
                match_seq(rest, chars, pos + 1, at_start)
            } else {
                None
            }
        }
        Node::Class { neg, ranges } => {
            let c = *chars.get(pos)?;
            let inside = ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
            if inside != *neg {
                match_seq(rest, chars, pos + 1, at_start)
            } else {
                None
            }
        }
        Node::Group(alts) => {
            for alt in alts {
                // Try each alternative, then the rest.
                if let Some(end) = match_seq_full(alt, chars, pos, at_start) {
                    for e in end {
                        if let Some(done) = match_seq(rest, chars, e, at_start) {
                            return Some(done);
                        }
                    }
                }
            }
            None
        }
        Node::Repeat { node, min, max } => {
            // Collect all reachable end positions greedily, then
            // backtrack from the longest.
            let mut ends = vec![pos];
            let mut cur = pos;
            let limit = max.unwrap_or(u32::MAX);
            let mut count = 0u32;
            while count < limit {
                let next = match_one(node, chars, cur, at_start);
                match next {
                    Some(n) if n > cur || count < *min => {
                        ends.push(n);
                        cur = n;
                        count += 1;
                        if n == cur && ends.len() > chars.len() + 2 {
                            break; // zero-width repeat guard
                        }
                    }
                    Some(_) | None => break,
                }
            }
            if (ends.len() as u32) <= *min {
                return None;
            }
            for &e in ends.iter().skip(*min as usize).rev() {
                if let Some(done) = match_seq(rest, chars, e, at_start) {
                    return Some(done);
                }
            }
            None
        }
    }
}

/// All end positions where `seq` can match (needed for groups followed
/// by more pattern). Returns a small vec of candidates.
fn match_seq_full(seq: &[Node], chars: &[char], pos: usize, at_start: bool) -> Option<Vec<usize>> {
    // For simplicity: a group match returns the single greedy end; for
    // the selector workloads (identifiers) this is sufficient, and the
    // engine stays linear in practice.
    match_seq(seq, chars, pos, at_start).map(|e| vec![e])
}

/// Matches a single (non-sequence) node once.
fn match_one(node: &Node, chars: &[char], pos: usize, at_start: bool) -> Option<usize> {
    match_seq(std::slice::from_ref(node), chars, pos, at_start)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Regex::new(pat).unwrap().is_match(text)
    }

    #[test]
    fn literals_search_anywhere() {
        assert!(m("MPI_", "call_MPI_Allreduce"));
        assert!(!m("MPI_", "serial_code"));
    }

    #[test]
    fn anchors() {
        assert!(m("^MPI_", "MPI_Init"));
        assert!(!m("^MPI_", "PMPI_Init"));
        assert!(m("solve$", "Foam::solve"));
        assert!(!m("solve$", "solver"));
        assert!(m("^main$", "main"));
        assert!(!m("^main$", "domain"));
    }

    #[test]
    fn dot_and_star() {
        assert!(m("MPI_.*", "MPI_Isend"));
        assert!(m("a.*b", "a_xxx_b"));
        assert!(m("a.*b", "ab"));
        assert!(!m("^a.+b$", "ab"));
        assert!(m("^a.+b$", "axb"));
    }

    #[test]
    fn optional_and_classes() {
        assert!(m("colou?r", "color"));
        assert!(m("colou?r", "colour"));
        assert!(m("[A-Z][a-z]+", "Foam"));
        assert!(!m("^[A-Z][a-z]+$", "FOAM"));
        assert!(m("[^0-9]+", "abc"));
        assert!(m("f[0-9]+", "f123"));
        assert!(!m("^f[0-9]+$", "f12x"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("^(foo|bar)$", "foo"));
        assert!(m("^(foo|bar)$", "bar"));
        assert!(!m("^(foo|bar)$", "baz"));
        assert!(m("solve(Segregated|Coupled)", "solveSegregatedOrCoupled"));
        assert!(m("(ab)+", "ababab"));
    }

    #[test]
    fn escapes() {
        assert!(m(r"operator\(\)", "Foam::less::operator()"));
        assert!(m(r"\d+", "f123"));
        assert!(m(r"\w+", "x_1"));
    }

    #[test]
    fn errors() {
        assert!(Regex::new("(unclosed").is_err());
        assert!(Regex::new("[unclosed").is_err());
        assert!(Regex::new("*dangling").is_err());
        assert!(Regex::new("^*").is_err());
        assert!(Regex::new(r"trailing\").is_err());
        assert!(Regex::new("[z-a]").is_err());
    }

    #[test]
    fn realistic_selector_patterns() {
        // The mpi.capi module's pattern.
        let mpi = Regex::new("^MPI_").unwrap();
        assert!(mpi.is_match("MPI_Allreduce"));
        assert!(!mpi.is_match("Foam::MPI_like"));
        // Template instantiation names.
        let tmpl = Regex::new("^Foam::fvMatrix<.*>::solve").unwrap();
        assert!(tmpl.is_match("Foam::fvMatrix<double>::solve(const dictionary&)"));
        assert!(!tmpl.is_match("Foam::fvMatrix<double>::relax()"));
    }
}
