//! # capi-spec — the CaPI selection DSL
//!
//! The core of CaPI (paper §III-A): "a custom domain-specific language
//! … a sequence of selector instances, which can either be named or
//! anonymous … `%name` references existing instances, `%%` is the set of
//! all functions … The last selector instance in the sequence is used as
//! the entry point to the pipeline."
//!
//! Listing 1 of the paper parses and evaluates verbatim:
//!
//! ```text
//! !import("mpi.capi")
//! excluded = join(inSystemHeader(%%), inlineSpecified(%%))
//! kernels = flops(">=", 10, loopDepth(">=" 1, %%))
//! join(subtract(%kernels, %excluded), %mpi_comm)
//! ```
//!
//! (Note the missing comma after `">="` — the grammar treats argument
//! commas as optional, like the paper's own listing.)
//!
//! Pipeline stages:
//! 1. [`lexer`] / [`parser`] — text → AST with source spans;
//! 2. [`modules`] — `!import("…")` resolution with built-in modules
//!    (`mpi.capi` ships the `mpi_comm` selector of Listing 1);
//! 3. [`sema`] — reference resolution, selector arity/type checking;
//! 4. [`eval`] — evaluation over a `capi-metacg` graph into a
//!    [`capi_metacg::NodeSet`], with ~25 selector types including the
//!    paper's `coarse` selector (§V-D) and statement aggregation (§II-B).

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod modules;
pub mod parser;
pub mod regex;
pub mod sema;

pub use ast::{Arg, Expr, Item, Spec};
pub use eval::{evaluate, EvalError, Selection, StageStat};
pub use lexer::{LexError, Token, TokenKind};
pub use modules::ModuleRegistry;
pub use parser::{parse, ParseError};
pub use regex::Regex;
pub use sema::{check, SemaError};

use capi_metacg::CallGraph;

/// One-call convenience: parse, resolve imports, check and evaluate
/// `source` against `graph` using `modules`.
pub fn run_spec(
    source: &str,
    graph: &CallGraph,
    modules: &ModuleRegistry,
) -> Result<Selection, SpecError> {
    let spec = modules.load(source)?;
    check(&spec)?;
    Ok(evaluate(&spec, graph)?)
}

/// Any error from the spec pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// Lexing failed.
    Lex(LexError),
    /// Parsing failed.
    Parse(ParseError),
    /// Import resolution failed.
    Module(modules::ModuleError),
    /// Semantic checking failed.
    Sema(SemaError),
    /// Evaluation failed.
    Eval(EvalError),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Lex(e) => write!(f, "lex error: {e}"),
            SpecError::Parse(e) => write!(f, "parse error: {e}"),
            SpecError::Module(e) => write!(f, "module error: {e}"),
            SpecError::Sema(e) => write!(f, "semantic error: {e}"),
            SpecError::Eval(e) => write!(f, "evaluation error: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<LexError> for SpecError {
    fn from(e: LexError) -> Self {
        SpecError::Lex(e)
    }
}
impl From<ParseError> for SpecError {
    fn from(e: ParseError) -> Self {
        SpecError::Parse(e)
    }
}
impl From<modules::ModuleError> for SpecError {
    fn from(e: modules::ModuleError) -> Self {
        SpecError::Module(e)
    }
}
impl From<SemaError> for SpecError {
    fn from(e: SemaError) -> Self {
        SpecError::Sema(e)
    }
}
impl From<EvalError> for SpecError {
    fn from(e: EvalError) -> Self {
        SpecError::Eval(e)
    }
}
