//! Selector-pipeline evaluation over a MetaCG graph.
//!
//! "When executed, each selector determines the set of functions from
//! the given call graph that match its inclusion conditions" (paper
//! §III-A). The value flowing between selectors is a
//! [`capi_metacg::NodeSet`]; the entry point is the last instance of the
//! sequence.

use crate::ast::{Arg, Expr, Item, Spec};
use crate::regex::Regex;
use capi_appmodel::{FunctionKind, Visibility};
use capi_metacg::{on_path, reachable_from, reaching, CallGraph, NodeId, NodeSet, Topo};
use std::collections::HashMap;
use std::fmt;

/// Evaluation errors.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// Reference to an instance that was never evaluated (sema should
    /// have caught this).
    UndefinedRef(String),
    /// Unknown selector type (sema should have caught this).
    UnknownSelector(String),
    /// Bad comparison operator string.
    BadComparison(String),
    /// Invalid regex in `byName`.
    BadRegex {
        /// The pattern.
        pattern: String,
        /// Engine message.
        message: String,
    },
    /// A call-path selector needs `main`, but the graph has none.
    NoEntryPoint,
    /// The spec has no items.
    Empty,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UndefinedRef(n) => write!(f, "undefined reference `%{n}`"),
            EvalError::UnknownSelector(n) => write!(f, "unknown selector `{n}`"),
            EvalError::BadComparison(op) => write!(f, "bad comparison operator `{op}`"),
            EvalError::BadRegex { pattern, message } => {
                write!(f, "bad regex `{pattern}`: {message}")
            }
            EvalError::NoEntryPoint => write!(f, "call-path selector requires a `main` node"),
            EvalError::Empty => write!(f, "specification has no selector instances"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Per-stage statistics (the paper's Table I reports per-spec counts).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageStat {
    /// Instance name (None for the anonymous entry).
    pub name: Option<String>,
    /// Selected function count after this stage.
    pub count: usize,
}

/// The result of running a selection pipeline.
#[derive(Clone, Debug)]
pub struct Selection {
    /// The entry-point instance's selected set — the IC content.
    pub set: NodeSet,
    /// Per-instance counts, in evaluation order.
    pub stages: Vec<StageStat>,
    /// Per-node sampling rates requested by `sample(N, …)` selectors,
    /// restricted to the final set and in node order. Only rates above 1
    /// appear; everything else is implicitly fully instrumented. When
    /// several `sample` instances tag the same node, the highest rate
    /// wins (lowest overhead).
    pub rates: Vec<(NodeId, u32)>,
}

impl Selection {
    /// Selected function names, in node order.
    pub fn names<'g>(&self, graph: &'g CallGraph) -> Vec<&'g str> {
        self.set
            .iter()
            .map(|id| graph.node(id).name.as_str())
            .collect()
    }

    /// Sampled function names with their 1-in-N rates, in node order.
    pub fn sampled_names<'g>(&self, graph: &'g CallGraph) -> Vec<(&'g str, u32)> {
        self.rates
            .iter()
            .map(|&(id, rate)| (graph.node(id).name.as_str(), rate))
            .collect()
    }
}

struct Ctx<'g> {
    graph: &'g CallGraph,
    instances: HashMap<String, NodeSet>,
    /// Node index → requested sampling rate (highest `sample` wins).
    rates: HashMap<usize, u32>,
}

fn cmp(op: &str, value: u64, n: i64) -> Result<bool, EvalError> {
    let n = n.max(0) as u64;
    Ok(match op {
        ">=" => value >= n,
        ">" => value > n,
        "<=" => value <= n,
        "<" => value < n,
        "==" | "=" => value == n,
        "!=" => value != n,
        _ => return Err(EvalError::BadComparison(op.to_string())),
    })
}

fn filter_meta(g: &CallGraph, input: &NodeSet, pred: impl Fn(NodeId) -> bool) -> NodeSet {
    let mut out = g.empty_set();
    for id in input.iter() {
        if pred(id) {
            out.insert(id);
        }
    }
    out
}

impl<'g> Ctx<'g> {
    fn eval_sel_arg(&mut self, a: &Arg) -> Result<NodeSet, EvalError> {
        match a {
            Arg::Expr(e) => self.eval_expr(e),
            _ => unreachable!("sema enforces selector arguments"),
        }
    }

    fn str_arg<'a>(&self, a: &'a Arg) -> &'a str {
        match a {
            Arg::Str(s) => s,
            _ => unreachable!("sema enforces string arguments"),
        }
    }

    fn int_arg(&self, a: &Arg) -> i64 {
        match a {
            Arg::Int(n) => *n,
            Arg::Float(x) => *x as i64,
            _ => unreachable!("sema enforces numeric arguments"),
        }
    }

    fn eval_expr(&mut self, e: &Expr) -> Result<NodeSet, EvalError> {
        let g = self.graph;
        match e {
            Expr::All(_) => Ok(g.full_set()),
            Expr::Ref(name, _) => self
                .instances
                .get(name)
                .cloned()
                .ok_or_else(|| EvalError::UndefinedRef(name.clone())),
            Expr::Call { name, args, .. } => match name.as_str() {
                "join" => {
                    let mut out = g.empty_set();
                    for a in args {
                        out.union_with(&self.eval_sel_arg(a)?);
                    }
                    Ok(out)
                }
                "intersect" => {
                    let mut out = self.eval_sel_arg(&args[0])?;
                    for a in &args[1..] {
                        out.intersect_with(&self.eval_sel_arg(a)?);
                    }
                    Ok(out)
                }
                "subtract" => {
                    let mut out = self.eval_sel_arg(&args[0])?;
                    out.subtract(&self.eval_sel_arg(&args[1])?);
                    Ok(out)
                }
                "complement" => Ok(self.eval_sel_arg(&args[0])?.complement()),
                "byName" => {
                    let pattern = self.str_arg(&args[0]);
                    let re = Regex::new(pattern).map_err(|e| EvalError::BadRegex {
                        pattern: pattern.to_string(),
                        message: e.message,
                    })?;
                    let input = self.eval_sel_arg(&args[1])?;
                    Ok(filter_meta(g, &input, |id| {
                        re.is_match(&g.node(id).name) || re.is_match(&g.node(id).demangled)
                    }))
                }
                "byPath" => {
                    let pattern = self.str_arg(&args[0]);
                    let re = Regex::new(pattern).map_err(|e| EvalError::BadRegex {
                        pattern: pattern.to_string(),
                        message: e.message,
                    })?;
                    let input = self.eval_sel_arg(&args[1])?;
                    Ok(filter_meta(g, &input, |id| {
                        re.is_match(&g.node(id).meta.file)
                    }))
                }
                "inObject" => {
                    let pattern = self.str_arg(&args[0]);
                    let re = Regex::new(pattern).map_err(|e| EvalError::BadRegex {
                        pattern: pattern.to_string(),
                        message: e.message,
                    })?;
                    let input = self.eval_sel_arg(&args[1])?;
                    Ok(filter_meta(g, &input, |id| {
                        re.is_match(&g.node(id).meta.object)
                    }))
                }
                "inSystemHeader" => {
                    let input = self.eval_sel_arg(&args[0])?;
                    Ok(filter_meta(g, &input, |id| g.node(id).meta.system_header))
                }
                "inlineSpecified" => {
                    let input = self.eval_sel_arg(&args[0])?;
                    Ok(filter_meta(g, &input, |id| g.node(id).meta.inline_keyword))
                }
                "virtualMethods" => {
                    let input = self.eval_sel_arg(&args[0])?;
                    Ok(filter_meta(g, &input, |id| g.node(id).meta.is_virtual))
                }
                "addressTaken" => {
                    let input = self.eval_sel_arg(&args[0])?;
                    Ok(filter_meta(g, &input, |id| g.node(id).meta.address_taken))
                }
                "hidden" => {
                    let input = self.eval_sel_arg(&args[0])?;
                    Ok(filter_meta(g, &input, |id| {
                        g.node(id).meta.visibility != Visibility::Default
                    }))
                }
                "definitions" => {
                    let input = self.eval_sel_arg(&args[0])?;
                    Ok(filter_meta(g, &input, |id| g.node(id).has_body))
                }
                "declarations" => {
                    let input = self.eval_sel_arg(&args[0])?;
                    Ok(filter_meta(g, &input, |id| !g.node(id).has_body))
                }
                "mpiFunctions" => {
                    let input = self.eval_sel_arg(&args[0])?;
                    Ok(filter_meta(g, &input, |id| {
                        g.node(id).meta.kind == FunctionKind::MpiStub
                    }))
                }
                "staticInitializers" => {
                    let input = self.eval_sel_arg(&args[0])?;
                    Ok(filter_meta(g, &input, |id| {
                        g.node(id).meta.kind == FunctionKind::StaticInitializer
                    }))
                }
                "flops" | "loopDepth" | "statements" | "loc" | "instructions" => {
                    let op = self.str_arg(&args[0]);
                    let n = self.int_arg(&args[1]);
                    let input = self.eval_sel_arg(&args[2])?;
                    let metric = |id: NodeId| -> u64 {
                        let m = &g.node(id).meta;
                        match name.as_str() {
                            "flops" => m.flops as u64,
                            "loopDepth" => m.loop_depth as u64,
                            "statements" => m.statements as u64,
                            "loc" => m.lines_of_code as u64,
                            _ => m.instructions as u64,
                        }
                    };
                    // Validate the operator once up front.
                    cmp(op, 0, 0)?;
                    Ok(filter_meta(g, &input, |id| {
                        cmp(op, metric(id), n).expect("operator validated")
                    }))
                }
                "onCallPathTo" => {
                    let target = self.eval_sel_arg(&args[0])?;
                    let entry = g.entry().ok_or(EvalError::NoEntryPoint)?;
                    let mut from = g.empty_set();
                    from.insert(entry);
                    Ok(on_path(g, &from, &target))
                }
                "onCallPathFrom" => {
                    let src = self.eval_sel_arg(&args[0])?;
                    Ok(reachable_from(g, &src))
                }
                "reaching" => {
                    let target = self.eval_sel_arg(&args[0])?;
                    Ok(reaching(g, &target))
                }
                "callers" => {
                    let input = self.eval_sel_arg(&args[0])?;
                    let mut out = g.empty_set();
                    for id in input.iter() {
                        for &(c, _) in g.callers(id) {
                            out.insert(c);
                        }
                    }
                    Ok(out)
                }
                "callees" => {
                    let input = self.eval_sel_arg(&args[0])?;
                    let mut out = g.empty_set();
                    for id in input.iter() {
                        for &(c, _) in g.callees(id) {
                            out.insert(c);
                        }
                    }
                    Ok(out)
                }
                "statementAggregation" => {
                    let threshold = self.int_arg(&args[0]).max(0) as u64;
                    let input = match args.get(1) {
                        Some(a) => self.eval_sel_arg(a)?,
                        None => g.full_set(),
                    };
                    Ok(statement_aggregation(g, &input, threshold))
                }
                "coarse" => {
                    let input = self.eval_sel_arg(&args[0])?;
                    let critical = match args.get(1) {
                        Some(a) => Some(self.eval_sel_arg(a)?),
                        None => None,
                    };
                    Ok(coarse(g, &input, critical.as_ref()))
                }
                "entry" => {
                    let mut out = g.empty_set();
                    if let Some(e) = g.entry() {
                        out.insert(e);
                    }
                    Ok(out)
                }
                "sample" => {
                    // Pass-through on the set; the side effect is the
                    // rate tag. Rates below 2 mean full instrumentation
                    // and are not recorded.
                    let n = self.int_arg(&args[0]).max(1) as u32;
                    let input = self.eval_sel_arg(&args[1])?;
                    if n > 1 {
                        for id in input.iter() {
                            let slot = self.rates.entry(id.index()).or_insert(1);
                            *slot = (*slot).max(n);
                        }
                    }
                    Ok(input)
                }
                other => Err(EvalError::UnknownSelector(other.to_string())),
            },
        }
    }
}

/// The coarse selector (paper §V-D): "traverses the call graph from top
/// to bottom. For each callee of a selected function node, it is then
/// determined if the current function is the only caller. If this is the
/// case, the callee is removed from the IC. Optionally, the user can
/// provide a selector instance for critical functions. Functions
/// selected by this instance will be retained in all cases."
pub fn coarse(g: &CallGraph, input: &NodeSet, critical: Option<&NodeSet>) -> NodeSet {
    let mut out = input.clone();
    let topo = Topo::compute(g);
    for &node in &topo.order {
        if !input.contains(node) {
            continue;
        }
        for &(callee, _) in g.callees(node) {
            if !input.contains(callee) {
                continue;
            }
            if critical.is_some_and(|c| c.contains(callee)) {
                continue;
            }
            let callers = g.callers(callee);
            if callers.len() == 1 && callers[0].0 == node {
                out.remove(callee);
            }
        }
    }
    out
}

/// Statement-aggregation selection (paper §II-B, ref \[16\]): aggregate
/// statement counts bottom-up over the call chain (SCCs collapsed) and
/// select functions whose aggregate reaches the threshold.
pub fn statement_aggregation(g: &CallGraph, input: &NodeSet, threshold: u64) -> NodeSet {
    let topo = Topo::compute(g);
    let mut agg: Vec<u64> = g
        .ids()
        .map(|id| g.node(id).meta.statements as u64)
        .collect();
    // Children first: walk the topo order backwards.
    for &node in topo.order.iter().rev() {
        let mut sum = agg[node.index()];
        for &(callee, _) in g.callees(node) {
            if topo.component[callee.index()] == topo.component[node.index()] {
                continue; // in-SCC edge: avoid double counting the cycle
            }
            sum = sum.saturating_add(agg[callee.index()]);
        }
        agg[node.index()] = sum;
    }
    let mut out = g.empty_set();
    for id in input.iter() {
        if agg[id.index()] >= threshold {
            out.insert(id);
        }
    }
    out
}

/// Evaluates a checked spec against `graph`.
pub fn evaluate(spec: &Spec, graph: &CallGraph) -> Result<Selection, EvalError> {
    if spec.items.is_empty() {
        return Err(EvalError::Empty);
    }
    let mut ctx = Ctx {
        graph,
        instances: HashMap::new(),
        rates: HashMap::new(),
    };
    let mut stages = Vec::with_capacity(spec.items.len());
    let mut last: Option<NodeSet> = None;
    for Item { name, expr } in &spec.items {
        let set = ctx.eval_expr(expr)?;
        stages.push(StageStat {
            name: name.clone(),
            count: set.count(),
        });
        if let Some(n) = name {
            ctx.instances.insert(n.clone(), set.clone());
        }
        last = Some(set);
    }
    let set = last.expect("items non-empty");
    // Rates only matter for nodes that survived into the final set:
    // a sampled node later subtracted away is simply uninstrumented.
    let rates = set
        .iter()
        .filter_map(|id| {
            ctx.rates
                .get(&id.index())
                .filter(|&&r| r > 1)
                .map(|&r| (id, r))
        })
        .collect();
    Ok(Selection { set, stages, rates })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules::ModuleRegistry;
    use capi_appmodel::{LinkTarget, MpiCall, ProgramBuilder};
    use capi_metacg::whole_program_callgraph;

    /// main → {comm_layer → MPI_Allreduce, kernel(flops, loop), tiny(inline),
    /// sys_func(system header)}; chain: solve → mid → amul (single callers).
    fn graph() -> CallGraph {
        let mut b = ProgramBuilder::new("app");
        b.unit("main.cc", LinkTarget::Executable);
        b.function("main")
            .main()
            .statements(40)
            .calls("comm_layer", 1)
            .calls("kernel", 1)
            .calls("tiny", 1)
            .calls("sys_func", 1)
            .calls("solve", 1)
            .finish();
        b.function("comm_layer")
            .statements(10)
            .calls("MPI_Allreduce", 1)
            .finish();
        b.function("MPI_Allreduce")
            .statements(1)
            .mpi(MpiCall::Allreduce { bytes: 8 })
            .finish();
        b.function("kernel")
            .statements(60)
            .flops(128)
            .loop_depth(2)
            .finish();
        b.function("tiny").statements(2).inline_keyword().finish();
        b.function("sys_func")
            .statements(5)
            .system_header()
            .finish();
        b.function("solve").statements(30).calls("mid", 1).finish();
        b.function("mid").statements(3).calls("amul", 1).finish();
        b.function("amul")
            .statements(50)
            .flops(512)
            .loop_depth(3)
            .finish();
        whole_program_callgraph(&b.build().unwrap())
    }

    fn run(src: &str) -> Vec<String> {
        let g = graph();
        let reg = ModuleRegistry::with_builtins();
        let sel = crate::run_spec(src, &g, &reg).unwrap();
        let mut names: Vec<String> = sel.names(&g).iter().map(|s| s.to_string()).collect();
        names.sort();
        names
    }

    #[test]
    fn all_functions() {
        assert_eq!(run("%%").len(), 9);
    }

    #[test]
    fn flops_and_loops() {
        assert_eq!(
            run(r#"flops(">=", 100, loopDepth(">=", 1, %%))"#),
            vec!["amul", "kernel"]
        );
        assert_eq!(run(r#"flops(">", 128, %%)"#), vec!["amul"]);
        assert_eq!(run(r#"flops("==", 128, %%)"#), vec!["kernel"]);
    }

    #[test]
    fn attribute_filters() {
        assert_eq!(run("inSystemHeader(%%)"), vec!["MPI_Allreduce", "sys_func"]);
        assert_eq!(run("inlineSpecified(%%)"), vec!["tiny"]);
        assert_eq!(run("mpiFunctions(%%)"), vec!["MPI_Allreduce"]);
        assert_eq!(run("entry()"), vec!["main"]);
    }

    #[test]
    fn set_operations() {
        assert_eq!(
            run(r#"subtract(inSystemHeader(%%), mpiFunctions(%%))"#),
            vec!["sys_func"]
        );
        assert_eq!(
            run(r#"intersect(inSystemHeader(%%), mpiFunctions(%%))"#),
            vec!["MPI_Allreduce"]
        );
        let all = run(r#"join(complement(inSystemHeader(%%)), inSystemHeader(%%))"#);
        assert_eq!(all.len(), 9);
    }

    #[test]
    fn mpi_module_call_path() {
        // mpi_comm: main → comm_layer → MPI_Allreduce.
        assert_eq!(
            run("!import(\"mpi.capi\")\n%mpi_comm"),
            vec!["MPI_Allreduce", "comm_layer", "main"]
        );
    }

    #[test]
    fn listing1_end_to_end() {
        let names = run(r#"
!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
kernels = flops(">=", 10, loopDepth(">=" 1, %%))
join(subtract(%kernels, %excluded), %mpi_comm)
"#);
        assert_eq!(
            names,
            vec!["MPI_Allreduce", "amul", "comm_layer", "kernel", "main"]
        );
    }

    #[test]
    fn coarse_removes_single_caller_chains() {
        // solve → mid → amul: mid and amul each have one caller.
        let names = run(
            r#"coarse(join(byName("^solve$", %%), byName("^mid$", %%), byName("^amul$", %%), entry()))"#,
        );
        // main retained (no callers at all); solve removed (its only
        // caller main is selected); the removal cascades: mid's only
        // caller is solve, amul's only caller is mid.
        assert_eq!(names, vec!["main"]);
    }

    #[test]
    fn coarse_critical_functions_retained() {
        let names = run(
            r#"coarse(join(byName("^solve$", %%), byName("^mid$", %%), byName("^amul$", %%), entry()), byName("^amul$", %%))"#,
        );
        assert_eq!(names, vec!["amul", "main"]);
    }

    #[test]
    fn statement_aggregation_selects_heavy_chains() {
        // Aggregated statements: amul=50, mid=53, solve=83, main≳120.
        let names = run("statementAggregation(80)");
        assert!(names.contains(&"main".to_string()));
        assert!(names.contains(&"solve".to_string()));
        assert!(!names.contains(&"mid".to_string()));
    }

    #[test]
    fn stage_stats_reported() {
        let g = graph();
        let reg = ModuleRegistry::with_builtins();
        let sel = crate::run_spec(
            "a = inSystemHeader(%%)\nb = mpiFunctions(%%)\njoin(%a, %b)",
            &g,
            &reg,
        )
        .unwrap();
        assert_eq!(sel.stages.len(), 3);
        assert_eq!(sel.stages[0].name.as_deref(), Some("a"));
        assert_eq!(sel.stages[0].count, 2);
        assert_eq!(sel.stages[2].count, 2);
    }

    #[test]
    fn bad_comparison_reported() {
        let g = graph();
        let reg = ModuleRegistry::with_builtins();
        let err = crate::run_spec(r#"flops("~~", 10, %%)"#, &g, &reg).unwrap_err();
        assert!(matches!(
            err,
            crate::SpecError::Eval(EvalError::BadComparison(_))
        ));
    }

    #[test]
    fn bad_regex_reported() {
        let g = graph();
        let reg = ModuleRegistry::with_builtins();
        let err = crate::run_spec(r#"byName("(unclosed", %%)"#, &g, &reg).unwrap_err();
        assert!(matches!(
            err,
            crate::SpecError::Eval(EvalError::BadRegex { .. })
        ));
    }

    #[test]
    fn sample_tags_rates_without_changing_the_set() {
        let g = graph();
        let reg = ModuleRegistry::with_builtins();
        let sel = crate::run_spec(r#"sample(4, byName("^kernel$", %%))"#, &g, &reg).unwrap();
        assert_eq!(sel.names(&g), vec!["kernel"]);
        assert_eq!(sel.sampled_names(&g), vec![("kernel", 4)]);
        // Inside a join, the rate rides along on the tagged members.
        let sel = crate::run_spec(
            r#"join(sample(8, byName("^kernel$", %%)), byName("^amul$", %%))"#,
            &g,
            &reg,
        )
        .unwrap();
        let mut names = sel.names(&g);
        names.sort_unstable();
        assert_eq!(names, vec!["amul", "kernel"]);
        assert_eq!(sel.sampled_names(&g), vec![("kernel", 8)]);
    }

    #[test]
    fn sample_rates_drop_with_the_node_and_keep_the_highest_tag() {
        let g = graph();
        let reg = ModuleRegistry::with_builtins();
        // The sampled node is subtracted away: no rate survives.
        let sel = crate::run_spec(
            r#"subtract(sample(4, byName("^kernel$", %%)), byName("^kernel$", %%))"#,
            &g,
            &reg,
        )
        .unwrap();
        assert!(sel.set.count() == 0 && sel.rates.is_empty());
        // Two tags on the same node: the highest rate wins.
        let sel = crate::run_spec(
            r#"join(sample(2, byName("^kernel$", %%)), sample(16, byName("^kernel$", %%)))"#,
            &g,
            &reg,
        )
        .unwrap();
        assert_eq!(sel.sampled_names(&g), vec![("kernel", 16)]);
        // Rate 1 is full instrumentation: nothing recorded.
        let sel = crate::run_spec(r#"sample(1, byName("^kernel$", %%))"#, &g, &reg).unwrap();
        assert_eq!(sel.names(&g), vec!["kernel"]);
        assert!(sel.rates.is_empty());
    }

    #[test]
    fn callers_and_callees() {
        assert_eq!(run(r#"callers(byName("^amul$", %%))"#), vec!["mid"]);
        assert_eq!(run(r#"callees(byName("^solve$", %%))"#), vec!["mid"]);
    }
}
