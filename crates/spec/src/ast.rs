//! AST of the specification language, plus the pretty-printer used for
//! round-trip property tests.

use std::fmt;

/// A source position (1-based line/column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Span {
    /// Line.
    pub line: usize,
    /// Column.
    pub col: usize,
}

/// A selector expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A selector invocation: `flops(">=", 10, %%)`.
    Call {
        /// Selector type name.
        name: String,
        /// Arguments.
        args: Vec<Arg>,
        /// Position.
        span: Span,
    },
    /// `%name` — reference to a previously defined instance.
    Ref(String, Span),
    /// `%%` — all functions.
    All(Span),
}

impl Expr {
    /// The expression's source position.
    pub fn span(&self) -> Span {
        match self {
            Expr::Call { span, .. } => *span,
            Expr::Ref(_, s) | Expr::All(s) => *s,
        }
    }
}

/// A selector argument.
#[derive(Clone, Debug, PartialEq)]
pub enum Arg {
    /// String literal (comparison operators, regexes, globs).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Nested selector expression.
    Expr(Expr),
}

/// One top-level item: an optionally named selector instance.
#[derive(Clone, Debug, PartialEq)]
pub struct Item {
    /// Instance name (None for anonymous — only the final entry-point
    /// item is usefully anonymous).
    pub name: Option<String>,
    /// The expression.
    pub expr: Expr,
}

/// A parsed specification.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Spec {
    /// Modules imported via `!import("…")`, in order.
    pub imports: Vec<String>,
    /// Selector instances in definition order; the last one is the
    /// pipeline entry point (paper §III-A).
    pub items: Vec<Item>,
}

impl Spec {
    /// The entry-point item (the last instance in the sequence).
    pub fn entry(&self) -> Option<&Item> {
        self.items.last()
    }
}

fn fmt_expr(e: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match e {
        Expr::All(_) => write!(f, "%%"),
        Expr::Ref(n, _) => write!(f, "%{n}"),
        Expr::Call { name, args, .. } => {
            write!(f, "{name}(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match a {
                    Arg::Str(s) => {
                        write!(f, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))?
                    }
                    Arg::Int(n) => write!(f, "{n}")?,
                    Arg::Float(x) => write!(f, "{x:?}")?,
                    Arg::Expr(e) => fmt_expr(e, f)?,
                }
            }
            write!(f, ")")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self, f)
    }
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for import in &self.imports {
            writeln!(f, "!import(\"{import}\")")?;
        }
        for item in &self.items {
            match &item.name {
                Some(n) => writeln!(f, "{n} = {}", item.expr)?,
                None => writeln!(f, "{}", item.expr)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_structure() {
        let spec = Spec {
            imports: vec!["mpi.capi".into()],
            items: vec![
                Item {
                    name: Some("k".into()),
                    expr: Expr::Call {
                        name: "flops".into(),
                        args: vec![
                            Arg::Str(">=".into()),
                            Arg::Int(10),
                            Arg::Expr(Expr::All(Span::default())),
                        ],
                        span: Span::default(),
                    },
                },
                Item {
                    name: None,
                    expr: Expr::Ref("k".into(), Span::default()),
                },
            ],
        };
        let text = spec.to_string();
        assert!(text.contains("!import(\"mpi.capi\")"));
        assert!(text.contains("k = flops(\">=\", 10, %%)"));
        assert!(text.trim_end().ends_with("%k"));
    }

    #[test]
    fn entry_is_last_item() {
        let spec = Spec {
            imports: vec![],
            items: vec![
                Item {
                    name: Some("a".into()),
                    expr: Expr::All(Span::default()),
                },
                Item {
                    name: None,
                    expr: Expr::Ref("a".into(), Span::default()),
                },
            ],
        };
        assert!(spec.entry().unwrap().name.is_none());
    }
}
