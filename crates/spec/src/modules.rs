//! Specification modules and `!import` resolution.
//!
//! Paper §III-A: "Recently, the ability to import existing specification
//! modules was added, in order to simplify re-use of common
//! functionality across applications." The registry ships the built-in
//! `mpi.capi` module Listing 1 relies on (defining `mpi_comm`: all
//! functions on a call path from `main` to any MPI communication
//! operation), plus `common.capi` with the usual exclusion set.

use crate::ast::Spec;
use crate::parser::{parse, ParseError};
use std::collections::HashMap;
use std::fmt;

/// Built-in `mpi.capi` source.
pub const MPI_CAPI: &str = r#"
# Functions that are themselves MPI operations.
mpi_funcs = byName("^MPI_", %%)
# All functions on a call path from main to any MPI operation.
mpi_comm = onCallPathTo(%mpi_funcs)
"#;

/// Built-in `common.capi` source.
pub const COMMON_CAPI: &str = r#"
# The usual exclusion set: system headers and inline-marked definitions.
common_excluded = join(inSystemHeader(%%), inlineSpecified(%%))
"#;

/// Module-resolution errors.
#[derive(Clone, Debug, PartialEq)]
pub enum ModuleError {
    /// `!import` of a module the registry does not know.
    Unknown(String),
    /// A module failed to parse.
    Parse {
        /// Module name.
        module: String,
        /// Underlying error.
        error: ParseError,
    },
    /// Import cycle.
    Cycle(String),
    /// The top-level source failed to parse.
    TopLevel(ParseError),
}

impl fmt::Display for ModuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleError::Unknown(m) => write!(f, "unknown module `{m}`"),
            ModuleError::Parse { module, error } => write!(f, "in module `{module}`: {error}"),
            ModuleError::Cycle(m) => write!(f, "import cycle through `{m}`"),
            ModuleError::TopLevel(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ModuleError {}

/// Registry of named specification modules.
#[derive(Clone, Debug)]
pub struct ModuleRegistry {
    sources: HashMap<String, String>,
}

impl Default for ModuleRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl ModuleRegistry {
    /// An empty registry (no modules available).
    pub fn empty() -> Self {
        Self {
            sources: HashMap::new(),
        }
    }

    /// A registry with the built-in modules.
    pub fn with_builtins() -> Self {
        let mut r = Self::empty();
        r.add("mpi.capi", MPI_CAPI);
        r.add("common.capi", COMMON_CAPI);
        r
    }

    /// Adds (or replaces) a module.
    pub fn add(&mut self, name: impl Into<String>, source: impl Into<String>) -> &mut Self {
        self.sources.insert(name.into(), source.into());
        self
    }

    /// Known module names.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.sources.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Parses `source` and splices all `!import`ed modules' items in
    /// front of the top-level items (depth-first, each module once).
    pub fn load(&self, source: &str) -> Result<Spec, ModuleError> {
        let top = parse(source).map_err(ModuleError::TopLevel)?;
        let mut merged = Spec::default();
        let mut loading: Vec<String> = Vec::new();
        let mut loaded: Vec<String> = Vec::new();
        for import in &top.imports {
            self.load_module(import, &mut merged, &mut loading, &mut loaded)?;
        }
        merged.imports = top.imports.clone();
        merged.items.extend(top.items);
        Ok(merged)
    }

    fn load_module(
        &self,
        name: &str,
        merged: &mut Spec,
        loading: &mut Vec<String>,
        loaded: &mut Vec<String>,
    ) -> Result<(), ModuleError> {
        if loaded.iter().any(|m| m == name) {
            return Ok(()); // diamond imports are fine
        }
        if loading.iter().any(|m| m == name) {
            return Err(ModuleError::Cycle(name.to_string()));
        }
        let source = self
            .sources
            .get(name)
            .ok_or_else(|| ModuleError::Unknown(name.to_string()))?;
        let spec = parse(source).map_err(|error| ModuleError::Parse {
            module: name.to_string(),
            error,
        })?;
        loading.push(name.to_string());
        for import in &spec.imports {
            self.load_module(import, merged, loading, loaded)?;
        }
        loading.pop();
        loaded.push(name.to_string());
        merged.items.extend(spec.items);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing1_imports_mpi_module() {
        let reg = ModuleRegistry::with_builtins();
        let spec = reg
            .load("!import(\"mpi.capi\")\njoin(%mpi_comm, %mpi_funcs)")
            .unwrap();
        let names: Vec<Option<&str>> = spec.items.iter().map(|i| i.name.as_deref()).collect();
        assert!(names.contains(&Some("mpi_funcs")));
        assert!(names.contains(&Some("mpi_comm")));
        // Module items come first; entry stays last.
        assert!(spec.entry().unwrap().name.is_none());
    }

    #[test]
    fn unknown_module_errors() {
        let reg = ModuleRegistry::with_builtins();
        assert_eq!(
            reg.load("!import(\"nope.capi\")\n%%"),
            Err(ModuleError::Unknown("nope.capi".into()))
        );
    }

    #[test]
    fn diamond_imports_load_once() {
        let mut reg = ModuleRegistry::empty();
        reg.add("base.capi", "base = inSystemHeader(%%)");
        reg.add("a.capi", "!import(\"base.capi\")\na = complement(%base)");
        reg.add("b.capi", "!import(\"base.capi\")\nb = complement(%base)");
        let spec = reg
            .load("!import(\"a.capi\")\n!import(\"b.capi\")\njoin(%a, %b)")
            .unwrap();
        let base_count = spec
            .items
            .iter()
            .filter(|i| i.name.as_deref() == Some("base"))
            .count();
        assert_eq!(base_count, 1);
    }

    #[test]
    fn cycles_detected() {
        let mut reg = ModuleRegistry::empty();
        reg.add("x.capi", "!import(\"y.capi\")\nx = %%");
        reg.add("y.capi", "!import(\"x.capi\")\ny = %%");
        assert!(matches!(
            reg.load("!import(\"x.capi\")\n%x"),
            Err(ModuleError::Cycle(_))
        ));
    }

    #[test]
    fn module_parse_errors_name_the_module() {
        let mut reg = ModuleRegistry::empty();
        reg.add("bad.capi", "this is ( not valid");
        match reg.load("!import(\"bad.capi\")\n%%") {
            Err(ModuleError::Parse { module, .. }) => assert_eq!(module, "bad.capi"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
