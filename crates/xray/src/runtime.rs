//! The XRay runtime (`xray-rt` + the paper's new `xray-dso`).
//!
//! Responsibilities reproduced from §V-A/§V-B:
//!
//! * resolve each object's sled table at registration time,
//! * assign object IDs — the main executable is always object 0, DSOs get
//!   1..=255, and registration beyond 255 DSOs fails,
//! * patch/unpatch sleds by flipping page protection (`mprotect`),
//!   rewriting the sled bytes, and restoring protection,
//! * deliver events from patched sleds to the single registered handler
//!   through the per-object trampolines (position-independent for DSOs),
//! * answer the ID↔address queries DynCaPI uses to cross-check its
//!   symbol mapping.
//!
//! Thread safety: rank threads dispatch concurrently; patching typically
//! happens during startup but is allowed at any time (that is the point
//! of *runtime-adaptable* instrumentation).

use crate::dispatch::{debug_assert_not_dispatching, DispatchGuard, TableCell};
use crate::handler::{Event, EventKind, Handler};
use crate::packed_id::{IdError, PackedId, MAX_FUNCTION_ID};
use crate::pass::InstrumentedObject;
use crate::sled::SLED_BYTES;
use crate::slots::SlotRegistry;
use crate::trampoline::{TrampolineFault, TrampolineSet};
use capi_objmodel::{AddressSpace, LoadedObject, MemError, PagePerms, PAGE_SIZE};
use capi_obs::{CounterId, HistogramId, HistogramKind, RecordKind, Telemetry, CONTROL_RANK};
use parking_lot::RwLock;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

pub use crate::dispatch::{DispatchTable, ObjectDispatch};

/// Runtime errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XRayError {
    /// The main executable must be registered before any DSO.
    MainMustBeFirst,
    /// Object 0 is already registered.
    MainAlreadyRegistered,
    /// All 255 DSO object IDs are in use.
    TooManyObjects,
    /// The object has more instrumented functions than fit in 24 bits.
    Id(IdError),
    /// No object with this ID is registered.
    UnknownObject(u8),
    /// The function ID is not present in the object's sled table.
    UnknownFunction(PackedId),
    /// Memory protection error during patching.
    Mem(MemError),
    /// Dispatch through an unsound trampoline.
    Fault(TrampolineFault),
    /// Dispatch to a sled that is not patched (stale snapshot).
    NotPatched(PackedId),
}

impl fmt::Display for XRayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XRayError::MainMustBeFirst => write!(f, "register the main executable first"),
            XRayError::MainAlreadyRegistered => write!(f, "main executable already registered"),
            XRayError::TooManyObjects => write!(f, "cannot register more than 255 DSOs"),
            XRayError::Id(e) => write!(f, "{e}"),
            XRayError::UnknownObject(o) => write!(f, "object {o} is not registered"),
            XRayError::UnknownFunction(id) => write!(f, "no sled for {id}"),
            XRayError::Mem(e) => write!(f, "patching failed: {e}"),
            XRayError::Fault(e) => write!(f, "{e}"),
            XRayError::NotPatched(id) => write!(f, "sled {id} is not patched"),
        }
    }
}

impl std::error::Error for XRayError {}

impl From<MemError> for XRayError {
    fn from(e: MemError) -> Self {
        XRayError::Mem(e)
    }
}

impl From<IdError> for XRayError {
    fn from(e: IdError) -> Self {
        XRayError::Id(e)
    }
}

/// Aggregate runtime statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Objects currently registered.
    pub objects_registered: usize,
    /// Sled rewrites performed (patch + unpatch).
    pub sled_writes: u64,
    /// Events dispatched to the handler.
    pub dispatches: u64,
    /// Dispatches delivered through the stale-snapshot tolerance path
    /// (sled unpatched after the caller's snapshot was taken).
    pub stale_dispatches: u64,
    /// Batch [`XRayRuntime::repatch`] operations performed.
    pub repatches: u64,
    /// Sampled-mode dispatches skipped by the 1-in-N counter.
    pub sampled_skips: u64,
}

/// A batch of in-flight patch-state changes — what the adaptation
/// controller applies between epochs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PatchDelta {
    /// Functions to patch (activate instrumentation).
    pub patch: Vec<PackedId>,
    /// Functions to unpatch (restore NOP sleds).
    pub unpatch: Vec<PackedId>,
    /// Per-function sampling rates to install (1-in-N; clamped to ≥ 1).
    /// Applied after the patch/unpatch state changes, so a delta that
    /// both patches a function and sets its rate ends sampled. Rate
    /// changes rewrite no sleds — they only republish the dispatch
    /// table.
    pub set_rate: Vec<(PackedId, u32)>,
}

impl PatchDelta {
    /// A delta that changes nothing.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.patch.is_empty() && self.unpatch.is_empty() && self.set_rate.is_empty()
    }

    /// Total number of requested changes.
    pub fn len(&self) -> usize {
        self.patch.len() + self.unpatch.len() + self.set_rate.len()
    }
}

/// What a batch [`XRayRuntime::repatch`] actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepatchReport {
    /// Sleds rewritten to the patched state.
    pub sleds_patched: u64,
    /// Sleds restored to NOPs.
    pub sleds_unpatched: u64,
    /// `mprotect` pairs issued (one per touched object).
    pub mprotect_pairs: u64,
    /// Sampling-rate entries that changed a stored rate.
    pub rates_set: u64,
    /// Patch generation after the batch was applied.
    pub generation: u64,
    /// Objects the whole delta referenced but that were no longer
    /// registered — skipped by [`XRayRuntime::repatch_surviving`]
    /// instead of failing the batch (0 on the strict path).
    pub skipped_objects: u64,
    /// Individual delta entries dropped because their object or
    /// function was gone (0 on the strict path).
    pub skipped_entries: u64,
}

struct Registered {
    inst: InstrumentedObject,
    trampolines: TrampolineSet,
    process_index: usize,
    base: u64,
    relocated: bool,
    /// Patch state per XRay function ID.
    patched: Vec<bool>,
    /// Sampling rate (1-in-N) per XRay function ID; 1 = full
    /// instrumentation. Reset to 1 whenever a function transitions from
    /// unpatched to patched, so a restored function is re-measured at
    /// full fidelity until a policy demotes it again.
    rate: Vec<u32>,
    /// Generation at which each function was last *unpatched*; lets
    /// dispatch distinguish "never patched" (hard fault) from "unpatched
    /// after the caller's snapshot" (tolerated, in-flight adaptation).
    unpatch_gen: Vec<u64>,
    /// `(entry_offset, fid)` sorted by offset — the reverse-lookup index
    /// [`XRayRuntime::id_at_address`] binary-searches instead of walking
    /// every sled entry.
    addr_index: Vec<(u64, u32)>,
}

impl Registered {
    fn new(
        inst: InstrumentedObject,
        loaded: &LoadedObject,
        process_index: usize,
        trampolines: TrampolineSet,
    ) -> Self {
        let n = inst.sleds.num_functions();
        let mut addr_index: Vec<(u64, u32)> = inst
            .sleds
            .entries
            .iter()
            .map(|e| (e.entry_offset, e.fid))
            .collect();
        addr_index.sort_unstable();
        Self {
            patched: vec![false; n],
            rate: vec![1; n],
            unpatch_gen: vec![0; n],
            addr_index,
            trampolines,
            process_index,
            base: loaded.base,
            relocated: !loaded.at_preferred_base,
            inst,
        }
    }
}

struct Inner {
    /// Index = object ID.
    objects: Vec<Option<Registered>>,
    handler: Option<Arc<dyn Handler>>,
    stats: RuntimeStats,
    /// The most recently published table — the copy-on-write source:
    /// the next publish clones this `Vec` of `Arc`s and rebuilds only
    /// the touched entries, sharing the rest.
    current: Arc<DispatchTable>,
}

/// Telemetry handles registered once per runtime: the shared
/// [`Telemetry`] instance plus the ids of the metrics this crate owns.
/// The dispatch fast path never touches these — its counters live on
/// the runtime's own reader slots and are *folded* into the registry by
/// [`XRayRuntime::sync_telemetry`] at publish/control points, so
/// enabling telemetry costs the hot path nothing.
struct ObsHandles {
    tel: Telemetry,
    dispatches: CounterId,
    stale: CounterId,
    skips: CounterId,
    publishes: CounterId,
    quiescence_wall: HistogramId,
    publish_wall: HistogramId,
}

/// The XRay runtime.
pub struct XRayRuntime {
    inner: RwLock<Inner>,
    generation: AtomicU64,
    /// The published dispatch fast-path snapshot; swapped atomically by
    /// the mutators above while they hold the `inner` write lock.
    table: TableCell,
    /// Dynamic per-thread/per-rank in-flight guards and event counters
    /// (dispatch is the hot path and runs concurrently on every rank
    /// thread). Slots are claimed lazily and recycled on thread exit.
    slots: SlotRegistry,
    /// Set-once self-telemetry wiring ([`Self::set_telemetry`]).
    obs: OnceLock<ObsHandles>,
}

impl Default for XRayRuntime {
    fn default() -> Self {
        Self::new()
    }
}

impl XRayRuntime {
    /// Creates an empty runtime.
    pub fn new() -> Self {
        let empty = Arc::new(DispatchTable::empty());
        Self {
            inner: RwLock::new(Inner {
                objects: Vec::new(),
                handler: None,
                stats: RuntimeStats::default(),
                current: Arc::clone(&empty),
            }),
            generation: AtomicU64::new(0),
            table: TableCell::new(empty),
            slots: SlotRegistry::new(),
            obs: OnceLock::new(),
        }
    }

    /// Installs the run's telemetry instance and registers this crate's
    /// metrics. Set-once: a second call on the same runtime is ignored
    /// (the first instance keeps collecting), so a runtime reused
    /// across adaptive runs reports into its original registry.
    pub fn set_telemetry(&self, tel: Telemetry) {
        let _ = self.obs.set(ObsHandles {
            dispatches: tel.counter("xray.dispatches"),
            stale: tel.counter("xray.stale_dispatches"),
            skips: tel.counter("xray.sampled_skips"),
            publishes: tel.counter("xray.publishes"),
            quiescence_wall: tel.histogram("xray.quiescence_wall_ns", HistogramKind::Wall),
            publish_wall: tel.histogram("xray.publish_wall_ns", HistogramKind::Wall),
            tel,
        });
    }

    /// The telemetry instance installed by [`Self::set_telemetry`].
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.obs.get().map(|h| &h.tel)
    }

    /// Folds the reader slots' running totals (dispatches, stale
    /// dispatches, sampled skips) into the telemetry registry. Called
    /// after every publish and at run end; cheap enough (a relaxed load
    /// per allocated slot and a store per registry stripe) to call at
    /// any control point.
    ///
    /// Per-rank totals are summed across live slots *and* the
    /// retired-totals accumulator (departed threads), then folded onto
    /// the registry's fixed stripe set grouped by rank — so with more
    /// distinct ranks than registry stripes the stored values are exact
    /// stripe sums rather than last-writer-wins.
    pub fn sync_telemetry(&self) {
        let Some(h) = self.obs.get() else { return };
        let mut totals: std::collections::BTreeMap<u32, [u64; 3]> =
            std::collections::BTreeMap::new();
        for slot in self.slots.counter_slots() {
            let t = totals.entry(slot.rank.load(Ordering::Relaxed)).or_default();
            t[0] += slot.dispatches.load(Ordering::Relaxed);
            t[1] += slot.stale_dispatches.load(Ordering::Relaxed);
            t[2] += slot.sampled_skips.load(Ordering::Relaxed);
        }
        for (rank, retired) in self.slots.retired_totals() {
            let t = totals.entry(rank).or_default();
            t[0] += retired.dispatches;
            t[1] += retired.stale_dispatches;
            t[2] += retired.sampled_skips;
        }
        h.tel
            .store_folded(h.dispatches, totals.iter().map(|(&r, t)| (r, t[0])));
        h.tel
            .store_folded(h.stale, totals.iter().map(|(&r, t)| (r, t[1])));
        h.tel
            .store_folded(h.skips, totals.iter().map(|(&r, t)| (r, t[2])));
    }

    /// Pre-claims the calling thread's reader slot for `rank`, so the
    /// thread's first dispatch skips the one-time claim lock. Rank
    /// threads (e.g. the executor's) call this once at startup; calling
    /// it is never required for correctness — slots are claimed lazily
    /// on first dispatch.
    pub fn register_reader(&self, rank: u32) {
        self.slots.register(rank);
    }

    /// Number of reader slots currently allocated (claimed plus
    /// free-listed recycled ones; the control slot is not counted).
    pub fn reader_slots_allocated(&self) -> usize {
        self.slots.allocated()
    }

    /// Acquires the inner read lock. Must never be reached from a
    /// handler's `on_event` (a concurrent publisher holding the write
    /// lock waits for that very dispatch to drain — deadlock); debug
    /// builds panic on the misuse. Guard-based readers
    /// ([`Self::is_patched`], [`Self::snapshot`], dispatch itself) are
    /// handler-safe.
    fn read_inner(&self, api: &str) -> parking_lot::RwLockReadGuard<'_, Inner> {
        debug_assert_not_dispatching(api);
        self.inner.read()
    }

    /// Acquires the inner write lock; same handler rule as
    /// [`Self::read_inner`].
    fn write_inner(&self, api: &str) -> parking_lot::RwLockWriteGuard<'_, Inner> {
        debug_assert_not_dispatching(api);
        self.inner.write()
    }

    /// Publishes a new dispatch table copy-on-write: only the entries
    /// for the objects in `touched` are rebuilt from the inner state;
    /// every other entry is shared with the previously published table
    /// as an `Arc` (an empty `touched` republishes with all entries
    /// shared — the handler-change path). This makes publish cost
    /// O(touched objects), independent of how many objects are loaded.
    ///
    /// Publication rules: must be called with the `inner` write lock
    /// held (serializing publishers), after the generation bump for the
    /// change being published, and before the lock is released — so
    /// every table pairs a generation with exactly the state it
    /// describes, and dispatchers always observe them together.
    fn publish_locked(&self, inner: &mut Inner, touched: &[u8]) {
        let mut objects = inner.current.objects.clone();
        // Registration can grow the object-ID space; the vec never
        // shrinks (deregistration vacates a slot in place).
        objects.resize_with(inner.objects.len(), || None);
        for &oid in touched {
            objects[oid as usize] = inner.objects[oid as usize].as_ref().map(|r| {
                Arc::new(ObjectDispatch {
                    object_id: oid,
                    process_index: r.process_index,
                    patched: r.patched.clone().into_boxed_slice(),
                    unpatch_gen: r.unpatch_gen.clone().into_boxed_slice(),
                    fault: r.trampolines.check_dispatch(r.relocated).err(),
                    fid_by_func: r.inst.sleds.fid_by_func.clone().into_boxed_slice(),
                    rate: r.rate.clone().into_boxed_slice(),
                })
            });
        }
        let table = Arc::new(DispatchTable {
            generation: self.generation(),
            objects,
            handler: inner.handler.clone(),
        });
        inner.current = Arc::clone(&table);
        let publish_start = std::time::Instant::now();
        let quiescence_ns = self.table.publish(table, &self.slots);
        if let Some(h) = self.obs.get() {
            h.tel
                .observe_control(h.publish_wall, publish_start.elapsed().as_nanos() as u64);
            h.tel.observe_control(h.quiescence_wall, quiescence_ns);
            h.tel.add_control(h.publishes, 1);
            self.sync_telemetry();
            if h.tel.recorder_armed() {
                let patched: usize = inner
                    .current
                    .objects
                    .iter()
                    .flatten()
                    .map(|o| o.patched.iter().filter(|&&p| p).count())
                    .sum();
                h.tel.record(
                    CONTROL_RANK,
                    RecordKind::Repatch,
                    "xray.publish",
                    format!(
                        "gen={} touched={} patched={}",
                        inner.current.generation,
                        touched.len(),
                        patched
                    ),
                );
            }
        }
    }

    fn bump(&self) {
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Monotonic counter incremented on every state change; used by the
    /// executor to invalidate memoized quiet-subtree summaries.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Registers the main executable as object 0. Its trampolines may use
    /// absolute addressing because the executable runs at its preferred
    /// base.
    pub fn register_main(
        &self,
        inst: InstrumentedObject,
        loaded: &LoadedObject,
        trampolines: TrampolineSet,
    ) -> Result<u8, XRayError> {
        let mut inner = self.write_inner("register_main");
        if !inner.objects.is_empty() {
            return Err(XRayError::MainAlreadyRegistered);
        }
        check_fid_capacity(&inst)?;
        inner
            .objects
            .push(Some(Registered::new(inst, loaded, 0, trampolines)));
        inner.stats.objects_registered += 1;
        self.bump();
        self.publish_locked(&mut inner, &[0]);
        drop(inner);
        Ok(0)
    }

    /// Registers a DSO (what the `xray-dso` runtime does from the DSO's
    /// load-time constructor), passing its sled table, its index in the
    /// loader's object list, and its local position-independent
    /// trampolines.
    pub fn register_dso(
        &self,
        inst: InstrumentedObject,
        loaded: &LoadedObject,
        process_index: usize,
        trampolines: TrampolineSet,
    ) -> Result<u8, XRayError> {
        let mut inner = self.write_inner("register_dso");
        if inner.objects.is_empty() {
            return Err(XRayError::MainMustBeFirst);
        }
        check_fid_capacity(&inst)?;
        // Reuse a vacated slot (deregistered DSO) or append.
        let slot = inner.objects.iter().skip(1).position(Option::is_none);
        let object_id = match slot {
            Some(s) => s + 1,
            None => {
                if inner.objects.len() > u8::MAX as usize {
                    return Err(XRayError::TooManyObjects);
                }
                inner.objects.push(None);
                inner.objects.len() - 1
            }
        };
        inner.objects[object_id] = Some(Registered::new(inst, loaded, process_index, trampolines));
        inner.stats.objects_registered += 1;
        self.bump();
        self.publish_locked(&mut inner, &[object_id as u8]);
        drop(inner);
        Ok(object_id as u8)
    }

    /// Deregisters a DSO (called when the object is `dlclose`d).
    pub fn deregister(&self, object_id: u8) -> Result<(), XRayError> {
        let mut inner = self.write_inner("deregister");
        let slot = inner
            .objects
            .get_mut(object_id as usize)
            .ok_or(XRayError::UnknownObject(object_id))?;
        if slot.take().is_none() {
            return Err(XRayError::UnknownObject(object_id));
        }
        inner.stats.objects_registered -= 1;
        self.bump();
        self.publish_locked(&mut inner, &[object_id]);
        drop(inner);
        Ok(())
    }

    /// Installs the global event handler (`__xray_set_handler`).
    pub fn set_handler(&self, handler: Arc<dyn Handler>) {
        let mut inner = self.write_inner("set_handler");
        inner.handler = Some(handler);
        self.bump();
        // Handler-only change: every object entry is shared.
        self.publish_locked(&mut inner, &[]);
    }

    /// Removes the handler.
    pub fn clear_handler(&self) {
        let mut inner = self.write_inner("clear_handler");
        inner.handler = None;
        self.bump();
        self.publish_locked(&mut inner, &[]);
    }

    /// Patches all sleds of one function. Returns the number of sleds
    /// rewritten. Page protection is flipped around the writes.
    pub fn patch_function(&self, mem: &mut AddressSpace, id: PackedId) -> Result<u32, XRayError> {
        self.set_patch_state(mem, id, true)
    }

    /// Restores the NOP sleds of one function.
    pub fn unpatch_function(&self, mem: &mut AddressSpace, id: PackedId) -> Result<u32, XRayError> {
        self.set_patch_state(mem, id, false)
    }

    fn set_patch_state(
        &self,
        mem: &mut AddressSpace,
        id: PackedId,
        state: bool,
    ) -> Result<u32, XRayError> {
        let mut inner = self.write_inner("set_patch_state");
        let reg = inner
            .objects
            .get_mut(id.object() as usize)
            .and_then(Option::as_mut)
            .ok_or(XRayError::UnknownObject(id.object()))?;
        let entry = reg
            .inst
            .sleds
            .by_fid(id.function())
            .ok_or(XRayError::UnknownFunction(id))?;
        if reg.patched[id.function() as usize] == state {
            return Ok(0); // idempotent
        }
        let base = reg.base;
        let offsets: Vec<u64> = entry.offsets().map(|(o, _)| o).collect();
        // mprotect the page range covering this function's sleds.
        let lo = offsets.iter().min().copied().expect("entry sled exists");
        let hi = offsets.iter().max().copied().expect("entry sled exists") + SLED_BYTES;
        let page_lo = (base + lo) / PAGE_SIZE * PAGE_SIZE;
        let page_hi = (base + hi).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        mem.mprotect(page_lo, page_hi - page_lo, PagePerms::RWX)?;
        for off in &offsets {
            mem.checked_write(base + off, SLED_BYTES)?;
        }
        mem.mprotect(page_lo, page_hi - page_lo, PagePerms::RX)?;
        reg.patched[id.function() as usize] = state;
        if state {
            reg.rate[id.function() as usize] = 1;
        }
        // Bump while still holding the write lock so snapshots always
        // pair a generation with the state it describes.
        let new_gen = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        if !state {
            reg.unpatch_gen[id.function() as usize] = new_gen;
        }
        let n = offsets.len() as u32;
        inner.stats.sled_writes += n as u64;
        self.publish_locked(&mut inner, &[id.object()]);
        drop(inner);
        Ok(n)
    }

    /// Patches every sled of an object in one pass (a single `mprotect`
    /// over the whole sled region — what XRay does at startup when no
    /// selection is active). Returns sleds rewritten.
    pub fn patch_all(&self, mem: &mut AddressSpace, object_id: u8) -> Result<u32, XRayError> {
        self.set_all(mem, object_id, true)
    }

    /// Patches a *set* of functions of one object with a single
    /// `mprotect` pair over the object's sled region — how DynCaPI
    /// applies an IC: flip the pages once, rewrite only the selected
    /// sleds, restore protection. Returns sleds rewritten.
    pub fn patch_functions(
        &self,
        mem: &mut AddressSpace,
        object_id: u8,
        fids: &[u32],
    ) -> Result<u32, XRayError> {
        if fids.is_empty() {
            return Ok(0);
        }
        let mut inner = self.write_inner("patch_functions");
        let reg = inner
            .objects
            .get_mut(object_id as usize)
            .and_then(Option::as_mut)
            .ok_or(XRayError::UnknownObject(object_id))?;
        let Some((lo, hi)) = reg.inst.sleds.sled_range() else {
            return Ok(0);
        };
        // Validate every fid before mutating anything (like `repatch`),
        // so a bad ID cannot leave half the batch written with no table
        // published.
        for &fid in fids {
            reg.inst.sleds.by_fid(fid).ok_or_else(|| {
                XRayError::UnknownFunction(
                    PackedId::pack(object_id, fid).unwrap_or(PackedId::from_raw(0)),
                )
            })?;
        }
        let base = reg.base;
        let page_lo = (base + lo) / PAGE_SIZE * PAGE_SIZE;
        let page_hi = (base + hi).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let mut written = 0u32;
        // Memory errors mid-batch can leave some flags flipped; publish
        // unconditionally below so the table never diverges from the
        // inner state, even on the error path.
        let res = (|| -> Result<(), XRayError> {
            mem.mprotect(page_lo, page_hi - page_lo, PagePerms::RWX)?;
            for &fid in fids {
                let entry = reg.inst.sleds.by_fid(fid).expect("validated");
                if reg.patched[fid as usize] {
                    continue;
                }
                for (off, _) in entry.offsets() {
                    mem.checked_write(base + off, SLED_BYTES)?;
                    written += 1;
                }
                reg.patched[fid as usize] = true;
                reg.rate[fid as usize] = 1;
            }
            mem.mprotect(page_lo, page_hi - page_lo, PagePerms::RX)?;
            Ok(())
        })();
        self.generation.fetch_add(1, Ordering::AcqRel);
        inner.stats.sled_writes += written as u64;
        self.publish_locked(&mut inner, &[object_id]);
        drop(inner);
        res.map(|()| written)
    }

    /// Unpatches every sled of an object.
    pub fn unpatch_all(&self, mem: &mut AddressSpace, object_id: u8) -> Result<u32, XRayError> {
        self.set_all(mem, object_id, false)
    }

    fn set_all(
        &self,
        mem: &mut AddressSpace,
        object_id: u8,
        state: bool,
    ) -> Result<u32, XRayError> {
        let mut inner = self.write_inner("set_all");
        let reg = inner
            .objects
            .get_mut(object_id as usize)
            .and_then(Option::as_mut)
            .ok_or(XRayError::UnknownObject(object_id))?;
        let Some((lo, hi)) = reg.inst.sleds.sled_range() else {
            return Ok(0);
        };
        let base = reg.base;
        let page_lo = (base + lo) / PAGE_SIZE * PAGE_SIZE;
        let page_hi = (base + hi).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let mut written = 0u32;
        let mut changed = Vec::new();
        // Publish unconditionally below: a memory error mid-pass leaves
        // some flags flipped, and the table must reflect them.
        let res = (|| -> Result<(), XRayError> {
            mem.mprotect(page_lo, page_hi - page_lo, PagePerms::RWX)?;
            let num_funcs = reg.inst.sleds.num_functions();
            for fid in 0..num_funcs {
                if reg.patched[fid] == state {
                    continue;
                }
                let entry = reg.inst.sleds.by_fid(fid as u32).expect("fid in range");
                for (off, _) in entry.offsets() {
                    mem.checked_write(base + off, SLED_BYTES)?;
                    written += 1;
                }
                reg.patched[fid] = state;
                if state {
                    reg.rate[fid] = 1;
                }
                changed.push(fid);
            }
            mem.mprotect(page_lo, page_hi - page_lo, PagePerms::RX)?;
            Ok(())
        })();
        let new_gen = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        if !state {
            for fid in changed {
                reg.unpatch_gen[fid] = new_gen;
            }
        }
        inner.stats.sled_writes += written as u64;
        self.publish_locked(&mut inner, &[object_id]);
        drop(inner);
        res.map(|()| written)
    }

    /// Applies a batch of patch *and* unpatch operations atomically with
    /// respect to snapshots — the in-flight adaptation primitive. Each
    /// touched object pays one `mprotect` pair; the patch generation is
    /// bumped once for the whole batch; functions unpatched here are
    /// remembered with the new generation so dispatches from snapshots
    /// that predate the batch are tolerated instead of faulting.
    ///
    /// When an ID appears in both lists the unpatch wins; duplicate IDs
    /// within a list are applied once.
    pub fn repatch(
        &self,
        mem: &mut AddressSpace,
        delta: &PatchDelta,
    ) -> Result<RepatchReport, XRayError> {
        self.repatch_inner(mem, delta, false)
    }

    /// Like [`Self::repatch`], but survives DSO churn: delta entries
    /// whose object was deregistered (or whose function has no sled in
    /// the currently-registered image, after a rebuild) are *skipped and
    /// counted* (`skipped_objects` / `skipped_entries` in the report)
    /// instead of failing the whole batch. This is the degradation mode
    /// an adaptation loop uses when an unload may race its decisions:
    /// never a panic, never a write through a recycled slot — a skipped
    /// entry simply leaves that object's sleds as they are.
    ///
    /// Memory faults (e.g. an injected `mprotect` failure) still
    /// propagate: they are environment failures, not staleness.
    pub fn repatch_surviving(
        &self,
        mem: &mut AddressSpace,
        delta: &PatchDelta,
    ) -> Result<RepatchReport, XRayError> {
        self.repatch_inner(mem, delta, true)
    }

    fn repatch_inner(
        &self,
        mem: &mut AddressSpace,
        delta: &PatchDelta,
        lenient: bool,
    ) -> Result<RepatchReport, XRayError> {
        if delta.is_empty() {
            return Ok(RepatchReport {
                generation: self.generation(),
                ..Default::default()
            });
        }
        let span = self.obs.get().map(|h| h.tel.span("xray.repatch"));
        let wall_start = std::time::Instant::now();
        let mut inner = self.write_inner("repatch");
        // Group by object, one requested end-state per function; the
        // unpatch insertion overwrites any patch entry (unpatch wins).
        // BTreeMaps keep the application order stable.
        let mut by_obj: std::collections::BTreeMap<u8, std::collections::BTreeMap<u32, bool>> =
            std::collections::BTreeMap::new();
        for &id in &delta.patch {
            by_obj
                .entry(id.object())
                .or_default()
                .insert(id.function(), true);
        }
        for &id in &delta.unpatch {
            by_obj
                .entry(id.object())
                .or_default()
                .insert(id.function(), false);
        }
        // Requested sampling rates, grouped the same way; the last entry
        // for a function wins and rates are clamped to ≥ 1.
        let mut rates_by_obj: std::collections::BTreeMap<u8, std::collections::BTreeMap<u32, u32>> =
            std::collections::BTreeMap::new();
        for &(id, rate) in &delta.set_rate {
            rates_by_obj
                .entry(id.object())
                .or_default()
                .insert(id.function(), rate.max(1));
        }
        let mut skipped_objects: std::collections::BTreeSet<u8> = std::collections::BTreeSet::new();
        let mut skipped_entries = 0u64;
        if lenient {
            // Drop entries that no longer resolve — the object was
            // deregistered, or its (rebuilt) image lost the function.
            fn drop_unknown<V>(
                map: &mut std::collections::BTreeMap<u8, std::collections::BTreeMap<u32, V>>,
                skipped_objects: &mut std::collections::BTreeSet<u8>,
                skipped_entries: &mut u64,
                inner: &Inner,
            ) {
                map.retain(|&oid, changes| {
                    match inner.objects.get(oid as usize).and_then(Option::as_ref) {
                        None => {
                            skipped_objects.insert(oid);
                            *skipped_entries += changes.len() as u64;
                            false
                        }
                        Some(reg) => {
                            changes.retain(|&fid, _| {
                                let known = reg.inst.sleds.by_fid(fid).is_some();
                                if !known {
                                    *skipped_entries += 1;
                                }
                                known
                            });
                            !changes.is_empty()
                        }
                    }
                });
            }
            drop_unknown(
                &mut by_obj,
                &mut skipped_objects,
                &mut skipped_entries,
                &inner,
            );
            drop_unknown(
                &mut rates_by_obj,
                &mut skipped_objects,
                &mut skipped_entries,
                &inner,
            );
        } else {
            // Validate every ID before mutating anything.
            let patch_keys = by_obj
                .iter()
                .flat_map(|(&o, c)| c.keys().map(move |&f| (o, f)));
            let rate_keys = rates_by_obj
                .iter()
                .flat_map(|(&o, c)| c.keys().map(move |&f| (o, f)));
            for (oid, fid) in patch_keys.chain(rate_keys) {
                let reg = inner
                    .objects
                    .get(oid as usize)
                    .and_then(Option::as_ref)
                    .ok_or(XRayError::UnknownObject(oid))?;
                reg.inst.sleds.by_fid(fid).ok_or_else(|| {
                    XRayError::UnknownFunction(
                        PackedId::pack(oid, fid).unwrap_or(PackedId::from_raw(0)),
                    )
                })?;
            }
        }
        let new_gen = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        let mut report = RepatchReport {
            generation: new_gen,
            skipped_objects: skipped_objects.len() as u64,
            skipped_entries,
            ..Default::default()
        };
        // Memory errors mid-batch can leave earlier objects applied;
        // publish unconditionally below so the table never diverges
        // from the inner state, even on the error path.
        let res = (|| -> Result<(), XRayError> {
            for (&oid, changes) in &by_obj {
                let reg = inner.objects[oid as usize].as_mut().expect("validated");
                let need: Vec<(u32, bool)> = changes
                    .iter()
                    .map(|(&fid, &state)| (fid, state))
                    .filter(|&(fid, state)| reg.patched[fid as usize] != state)
                    .collect();
                if need.is_empty() {
                    continue;
                }
                let Some((lo, hi)) = reg.inst.sleds.sled_range() else {
                    continue;
                };
                let base = reg.base;
                let page_lo = (base + lo) / PAGE_SIZE * PAGE_SIZE;
                let page_hi = (base + hi).div_ceil(PAGE_SIZE) * PAGE_SIZE;
                mem.mprotect(page_lo, page_hi - page_lo, PagePerms::RWX)?;
                for (fid, state) in need {
                    let entry = reg.inst.sleds.by_fid(fid).expect("validated");
                    let mut sleds = 0u64;
                    for (off, _) in entry.offsets() {
                        mem.checked_write(base + off, SLED_BYTES)?;
                        sleds += 1;
                    }
                    reg.patched[fid as usize] = state;
                    if state {
                        reg.rate[fid as usize] = 1;
                        report.sleds_patched += sleds;
                    } else {
                        reg.unpatch_gen[fid as usize] = new_gen;
                        report.sleds_unpatched += sleds;
                    }
                }
                mem.mprotect(page_lo, page_hi - page_lo, PagePerms::RX)?;
                report.mprotect_pairs += 1;
            }
            // Sampling rates go last, so `patch + set_rate` for the same
            // function ends sampled (the patch transition resets the
            // rate to 1 above). Rate changes touch no sled bytes and
            // cost no `mprotect` pair — they live only in the published
            // table.
            for (&oid, rates) in &rates_by_obj {
                let reg = inner.objects[oid as usize].as_mut().expect("validated");
                for (&fid, &rate) in rates {
                    if reg.rate[fid as usize] != rate {
                        reg.rate[fid as usize] = rate;
                        report.rates_set += 1;
                    }
                }
            }
            Ok(())
        })();
        inner.stats.sled_writes += report.sleds_patched + report.sleds_unpatched;
        inner.stats.repatches += 1;
        // COW publish: only the objects this delta actually referenced
        // are rebuilt — DSO churn and repatch stay O(touched objects).
        let touched: Vec<u8> = by_obj
            .keys()
            .chain(rates_by_obj.keys())
            .copied()
            .collect::<std::collections::BTreeSet<u8>>()
            .into_iter()
            .collect();
        self.publish_locked(&mut inner, &touched);
        drop(inner);
        if let Some(span) = &span {
            span.arg("generation", report.generation);
            span.arg("sleds_patched", report.sleds_patched);
            span.arg("sleds_unpatched", report.sleds_unpatched);
            span.arg("mprotect_pairs", report.mprotect_pairs);
            span.arg("rates_set", report.rates_set);
            if lenient {
                span.arg("skipped_objects", report.skipped_objects);
                span.arg("skipped_entries", report.skipped_entries);
            }
            span.wall_ns(wall_start.elapsed().as_nanos() as u64);
        }
        res.map(|()| report)
    }

    /// Whether the function's sleds are currently patched.
    pub fn is_patched(&self, id: PackedId) -> bool {
        let guard = DispatchGuard::enter(&self.table, self.slots.control());
        guard
            .table()
            .objects
            .get(id.object() as usize)
            .and_then(Option::as_ref)
            .and_then(|o| o.patched.get(id.function() as usize))
            .copied()
            .unwrap_or(false)
    }

    /// Dispatches an event from a patched sled through the object's
    /// trampolines to the handler. Returns the handler's virtual cost.
    pub fn dispatch(
        &self,
        id: PackedId,
        kind: EventKind,
        tsc: u64,
        rank: u32,
    ) -> Result<u64, XRayError> {
        self.dispatch_from_snapshot(id, kind, tsc, rank, self.generation())
    }

    /// Like [`Self::dispatch`], but for callers working from a
    /// [`PatchSnapshot`] taken at `snapshot_generation`. A sled that was
    /// unpatched *after* that generation is tolerated — the in-flight
    /// thread already entered the (then-patched) sled, so the event is
    /// delivered and counted as stale instead of raising
    /// [`XRayError::NotPatched`]. A sled that was already dormant at the
    /// snapshot still faults hard.
    ///
    /// This is the wait-free fast path: no lock, no `Arc` clone — one
    /// striped in-flight bump, one atomic table load, two array indexes,
    /// then straight into the handler. The table guard pins the handler
    /// for the duration of the call, so handlers must never call back
    /// into any API that takes the inner lock — publishers
    /// (registration, patching, `set_handler`) *or* read-lock queries
    /// like [`Self::stats`]: a concurrent publisher would wait forever
    /// for the handler's own dispatch to drain while the handler waits
    /// behind the publisher's write lock. Debug builds panic on the
    /// misuse; [`Self::is_patched`] and [`Self::snapshot`] are
    /// guard-based and handler-safe.
    pub fn dispatch_from_snapshot(
        &self,
        id: PackedId,
        kind: EventKind,
        tsc: u64,
        rank: u32,
        snapshot_generation: u64,
    ) -> Result<u64, XRayError> {
        let slot = self.slots.slot_for(rank);
        let guard = DispatchGuard::enter(&self.table, slot);
        let table = guard.table();
        let obj = table
            .objects
            .get(id.object() as usize)
            .and_then(Option::as_ref)
            .ok_or(XRayError::UnknownObject(id.object()))?;
        let fidx = id.function() as usize;
        let patched = obj.patched.get(fidx).copied().unwrap_or(false);
        let stale = if patched {
            false
        } else {
            let unpatched_at = obj.unpatch_gen.get(fidx).copied().unwrap_or(0);
            if unpatched_at > snapshot_generation {
                true
            } else {
                return Err(XRayError::NotPatched(id));
            }
        };
        if let Some(fault) = obj.fault {
            return Err(XRayError::Fault(fault));
        }
        slot.dispatches.fetch_add(1, Ordering::Relaxed);
        if stale {
            slot.stale_dispatches.fetch_add(1, Ordering::Relaxed);
        }
        let Some(handler) = table.handler.as_ref() else {
            return Ok(0); // patched but no handler installed: sled jumps, returns
        };
        let event = Event {
            id,
            kind,
            tsc,
            rank,
        };
        Ok(handler.on_event(event))
    }

    /// The sampled variant of [`Self::dispatch_from_snapshot`]: delivers
    /// the event only when the caller's per-rank, per-function sequence
    /// number `sample_seq` lands on the function's published 1-in-N
    /// rate (`sample_seq % rate == 0`). A skipped event costs one
    /// striped counter bump and returns `Ok(None)`; a delivered event
    /// returns `Ok(Some(handler_ns))`.
    ///
    /// At rate 1 every sequence number is delivered, so the path is
    /// behaviorally identical to [`Self::dispatch_from_snapshot`].
    /// Determinism: the caller owns `sample_seq` (one counter per rank
    /// and function), so repeated runs skip exactly the same events.
    pub fn dispatch_sampled_from_snapshot(
        &self,
        id: PackedId,
        kind: EventKind,
        tsc: u64,
        rank: u32,
        snapshot_generation: u64,
        sample_seq: u64,
    ) -> Result<Option<u64>, XRayError> {
        let slot = self.slots.slot_for(rank);
        let guard = DispatchGuard::enter(&self.table, slot);
        let table = guard.table();
        let obj = table
            .objects
            .get(id.object() as usize)
            .and_then(Option::as_ref)
            .ok_or(XRayError::UnknownObject(id.object()))?;
        let fidx = id.function() as usize;
        let patched = obj.patched.get(fidx).copied().unwrap_or(false);
        let stale = if patched {
            false
        } else {
            let unpatched_at = obj.unpatch_gen.get(fidx).copied().unwrap_or(0);
            if unpatched_at > snapshot_generation {
                true
            } else {
                return Err(XRayError::NotPatched(id));
            }
        };
        if let Some(fault) = obj.fault {
            return Err(XRayError::Fault(fault));
        }
        let rate = obj.rate.get(fidx).copied().unwrap_or(1).max(1);
        if !sample_seq.is_multiple_of(rate as u64) {
            slot.sampled_skips.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        }
        slot.dispatches.fetch_add(1, Ordering::Relaxed);
        if stale {
            slot.stale_dispatches.fetch_add(1, Ordering::Relaxed);
        }
        let Some(handler) = table.handler.as_ref() else {
            return Ok(Some(0));
        };
        let event = Event {
            id,
            kind,
            tsc,
            rank,
        };
        Ok(Some(handler.on_event(event)))
    }

    /// The published sampling rate of a function (1 = full
    /// instrumentation). Guard-based and handler-safe, like
    /// [`Self::is_patched`].
    pub fn sample_rate(&self, id: PackedId) -> u32 {
        let guard = DispatchGuard::enter(&self.table, self.slots.control());
        guard
            .table()
            .objects
            .get(id.object() as usize)
            .and_then(Option::as_ref)
            .and_then(|o| o.rate.get(id.function() as usize))
            .copied()
            .unwrap_or(1)
    }

    /// `__xray_function_address`: absolute address of a function by its
    /// packed ID — the API DynCaPI cross-checks symbol mappings with.
    pub fn function_address(&self, id: PackedId) -> Option<u64> {
        let inner = self.read_inner("function_address");
        let reg = inner.objects.get(id.object() as usize)?.as_ref()?;
        let entry = reg.inst.sleds.by_fid(id.function())?;
        Some(reg.base + entry.entry_offset)
    }

    /// Reverse of [`Self::function_address`]: binary search of each
    /// object's offset-sorted entry index (built at registration)
    /// instead of a linear scan over every sled entry.
    pub fn id_at_address(&self, addr: u64) -> Option<PackedId> {
        let inner = self.read_inner("id_at_address");
        for (oid, reg) in inner.objects.iter().enumerate() {
            let Some(reg) = reg else { continue };
            if addr < reg.base {
                continue;
            }
            let off = addr - reg.base;
            if let Ok(i) = reg.addr_index.binary_search_by_key(&off, |&(o, _)| o) {
                return PackedId::pack(oid as u8, reg.addr_index[i].1).ok();
            }
        }
        None
    }

    /// Object ID registered for a loader object index.
    pub fn object_id_for_process_index(&self, process_index: usize) -> Option<u8> {
        let inner = self.read_inner("object_id_for_process_index");
        inner
            .objects
            .iter()
            .enumerate()
            .find(|(_, r)| r.as_ref().is_some_and(|r| r.process_index == process_index))
            .map(|(i, _)| i as u8)
    }

    /// Current statistics. Event counters are the sum of every live
    /// reader slot plus the retired totals folded out of recycled slots
    /// — exact across thread exits and slot reuse.
    pub fn stats(&self) -> RuntimeStats {
        let mut s = self.read_inner("stats").stats;
        for slot in self.slots.counter_slots() {
            s.dispatches += slot.dispatches.load(Ordering::Relaxed);
            s.stale_dispatches += slot.stale_dispatches.load(Ordering::Relaxed);
            s.sampled_skips += slot.sampled_skips.load(Ordering::Relaxed);
        }
        for retired in self.slots.retired_totals().values() {
            s.dispatches += retired.dispatches;
            s.stale_dispatches += retired.stale_dispatches;
            s.sampled_skips += retired.sampled_skips;
        }
        s
    }

    /// Total sleds across all registered objects.
    pub fn total_sleds(&self) -> usize {
        let inner = self.read_inner("total_sleds");
        inner
            .objects
            .iter()
            .flatten()
            .map(|r| r.inst.sleds.total_sleds())
            .sum()
    }

    /// Packed IDs of all currently patched functions, ordered by
    /// (object, function) — the active set the adaptation controller
    /// starts from.
    pub fn patched_ids(&self) -> Vec<PackedId> {
        let inner = self.read_inner("patched_ids");
        let mut ids = Vec::new();
        for (oid, reg) in inner.objects.iter().enumerate() {
            let Some(reg) = reg else { continue };
            for (fid, &p) in reg.patched.iter().enumerate() {
                if p {
                    if let Ok(id) = PackedId::pack(oid as u8, fid as u32) {
                        ids.push(id);
                    }
                }
            }
        }
        ids
    }

    /// Counts currently patched functions.
    pub fn patched_functions(&self) -> usize {
        let inner = self.read_inner("patched_functions");
        inner
            .objects
            .iter()
            .flatten()
            .map(|r| r.patched.iter().filter(|&&p| p).count())
            .sum()
    }

    /// Takes a consistent snapshot of the patch state for lock-free use
    /// on the executor's hot path. Derived from the published dispatch
    /// table, so it never contends with the write lock and its
    /// generation always matches the patch state it carries.
    pub fn snapshot(&self) -> PatchSnapshot {
        let guard = DispatchGuard::enter(&self.table, self.slots.control());
        let table = guard.table();
        let max_pi = table
            .objects
            .iter()
            .flatten()
            .map(|o| o.process_index + 1)
            .max()
            .unwrap_or(0);
        let mut by_process_index: Vec<Option<ObjectSnapshot>> = vec![None; max_pi];
        for obj in table.objects.iter().flatten() {
            by_process_index[obj.process_index] = Some(ObjectSnapshot {
                object_id: obj.object_id,
                fid_by_func: obj.fid_by_func.to_vec(),
                patched: obj.patched.to_vec(),
                rate: obj.rate.to_vec(),
            });
        }
        PatchSnapshot {
            generation: table.generation,
            by_process_index,
        }
    }

    /// The currently published [`DispatchTable`], pinned by its own
    /// `Arc`. Tests use this to assert the copy-on-write sharing
    /// contract (`Arc::ptr_eq` on entries a mutation did not touch);
    /// embedders can use it to inspect the exact table readers see.
    pub fn published_table(&self) -> Arc<DispatchTable> {
        Arc::clone(&self.read_inner("published_table").current)
    }

    /// A compact per-object summary of the currently published dispatch
    /// table — generation plus patched/sampled/faulted counts per live
    /// object — the "what was the dispatch state" section of a
    /// post-mortem dump. Fully deterministic (object-ID order, derived
    /// from the published COW table).
    pub fn dispatch_summary(&self) -> (u64, Vec<ObjectPatchSummary>) {
        let table = self.published_table();
        let mut objects = Vec::new();
        for obj in table.objects.iter().flatten() {
            let patched = obj.patched.iter().filter(|&&p| p).count();
            let sampled = obj
                .patched
                .iter()
                .zip(obj.rate.iter())
                .filter(|&(&p, &r)| p && r > 1)
                .count();
            objects.push(ObjectPatchSummary {
                object_id: obj.object_id,
                functions: obj.patched.len(),
                patched,
                sampled,
                faulted: obj.fault.is_some(),
            });
        }
        (table.generation, objects)
    }

    /// Reference implementation of [`Self::snapshot`] that rebuilds the
    /// snapshot from the full registration/patch state instead of the
    /// incrementally published table — the oracle the copy-on-write
    /// path is checked against (`tests/dispatch_scaling.rs`). Slower
    /// (takes the read lock, clones everything); not for hot paths.
    pub fn snapshot_full_rebuild(&self) -> PatchSnapshot {
        let inner = self.read_inner("snapshot_full_rebuild");
        let max_pi = inner
            .objects
            .iter()
            .flatten()
            .map(|r| r.process_index + 1)
            .max()
            .unwrap_or(0);
        let mut by_process_index: Vec<Option<ObjectSnapshot>> = vec![None; max_pi];
        for (oid, reg) in inner.objects.iter().enumerate() {
            let Some(r) = reg else { continue };
            by_process_index[r.process_index] = Some(ObjectSnapshot {
                object_id: oid as u8,
                fid_by_func: r.inst.sleds.fid_by_func.clone(),
                patched: r.patched.clone(),
                rate: r.rate.clone(),
            });
        }
        // Generation only moves under the write lock, which our read
        // lock excludes — so this pairing is as consistent as the
        // guard-based snapshot's.
        PatchSnapshot {
            generation: self.generation(),
            by_process_index,
        }
    }
}

fn check_fid_capacity(inst: &InstrumentedObject) -> Result<(), XRayError> {
    let n = inst.sleds.num_functions();
    if n > (MAX_FUNCTION_ID as usize + 1) {
        return Err(XRayError::Id(IdError::FunctionIdOverflow { fid: n as u32 }));
    }
    Ok(())
}

/// One object's row in [`XRayRuntime::dispatch_summary`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjectPatchSummary {
    /// XRay object ID.
    pub object_id: u8,
    /// Size of the object's function-ID space.
    pub functions: usize,
    /// Functions currently patched.
    pub patched: usize,
    /// Patched functions running at a sampling rate > 1.
    pub sampled: usize,
    /// Whether the published entry carries a trampoline fault (the
    /// object dispatches nothing until repatched).
    pub faulted: bool,
}

/// Patch-state snapshot for the executor's hot path.
#[derive(Clone, Debug)]
pub struct PatchSnapshot {
    /// Runtime generation when the snapshot was taken.
    pub generation: u64,
    /// Indexed by loader object index.
    pub by_process_index: Vec<Option<ObjectSnapshot>>,
}

/// Per-object slice of a [`PatchSnapshot`].
#[derive(Clone, Debug)]
pub struct ObjectSnapshot {
    /// XRay object ID.
    pub object_id: u8,
    /// Function index → XRay function ID.
    pub fid_by_func: Vec<Option<u32>>,
    /// Patch state by function ID.
    pub patched: Vec<bool>,
    /// Sampling rate (1-in-N) by function ID; 1 = full instrumentation.
    pub rate: Vec<u32>,
}

impl PatchSnapshot {
    /// Looks up the packed ID and patch state for a function, by loader
    /// object index and object-local function index.
    #[inline]
    pub fn lookup(&self, process_index: usize, func_index: u32) -> Option<(PackedId, bool)> {
        let obj = self.by_process_index.get(process_index)?.as_ref()?;
        let fid = (*obj.fid_by_func.get(func_index as usize)?)?;
        let packed = PackedId::pack(obj.object_id, fid).ok()?;
        Some((packed, obj.patched[fid as usize]))
    }

    /// The sampling rate recorded for a function (by loader object
    /// index and object-local function index); 1 when unknown.
    #[inline]
    pub fn sample_rate(&self, process_index: usize, func_index: u32) -> u32 {
        let Some(Some(obj)) = self.by_process_index.get(process_index) else {
            return 1;
        };
        let Some(Some(fid)) = obj.fid_by_func.get(func_index as usize) else {
            return 1;
        };
        obj.rate.get(*fid as usize).copied().unwrap_or(1).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::BasicLog;
    use crate::pass::{instrument_object, PassOptions};
    use capi_appmodel::{LinkTarget, ProgramBuilder};
    use capi_objmodel::{compile, CompileOptions, Process};

    struct Fixture {
        process: Process,
        runtime: XRayRuntime,
        main_inst: InstrumentedObject,
        dso_inst: InstrumentedObject,
    }

    fn fixture() -> Fixture {
        let mut b = ProgramBuilder::new("app");
        b.unit("m.cc", LinkTarget::Executable);
        b.function("main")
            .main()
            .statements(50)
            .instructions(400)
            .calls("kernel", 1)
            .calls("solve", 1)
            .finish();
        b.function("kernel")
            .statements(60)
            .instructions(600)
            .loop_depth(1)
            .finish();
        b.unit("s.cc", LinkTarget::Dso("libsolver.so".into()));
        b.function("solve")
            .statements(70)
            .instructions(800)
            .loop_depth(2)
            .finish();
        let p = b.build().unwrap();
        let bin = compile(&p, &CompileOptions::o2()).unwrap();
        let process = Process::launch_binary(&bin).unwrap();
        let main_inst = instrument_object(
            process.object(0).unwrap().image.clone(),
            &PassOptions::instrument_all(),
        );
        let dso_inst = instrument_object(
            process.object(1).unwrap().image.clone(),
            &PassOptions::instrument_all(),
        );
        Fixture {
            process,
            runtime: XRayRuntime::new(),
            main_inst,
            dso_inst,
        }
    }

    #[test]
    fn main_gets_object_zero_dso_must_wait() {
        let f = fixture();
        let loaded_dso = f.process.object(1).unwrap().clone();
        assert!(matches!(
            f.runtime
                .register_dso(f.dso_inst.clone(), &loaded_dso, 1, TrampolineSet::pic()),
            Err(XRayError::MainMustBeFirst)
        ));
        let id = f
            .runtime
            .register_main(
                f.main_inst.clone(),
                f.process.object(0).unwrap(),
                TrampolineSet::absolute(),
            )
            .unwrap();
        assert_eq!(id, 0);
        let dso_id = f
            .runtime
            .register_dso(f.dso_inst.clone(), &loaded_dso, 1, TrampolineSet::pic())
            .unwrap();
        assert_eq!(dso_id, 1);
    }

    fn registered() -> (Fixture, u8, u8) {
        let f = fixture();
        let main_id = f
            .runtime
            .register_main(
                f.main_inst.clone(),
                f.process.object(0).unwrap(),
                TrampolineSet::absolute(),
            )
            .unwrap();
        let dso_id = f
            .runtime
            .register_dso(
                f.dso_inst.clone(),
                f.process.object(1).unwrap(),
                1,
                TrampolineSet::pic(),
            )
            .unwrap();
        (f, main_id, dso_id)
    }

    #[test]
    fn patch_and_dispatch_roundtrip() {
        let (mut f, main_id, _) = registered();
        let fid = f
            .main_inst
            .sleds
            .fid_of(f.main_inst.image.function_index("kernel").unwrap())
            .unwrap();
        let id = PackedId::pack(main_id, fid).unwrap();
        assert!(!f.runtime.is_patched(id));
        // Dispatch before patching is an error.
        assert!(matches!(
            f.runtime.dispatch(id, EventKind::Entry, 0, 0),
            Err(XRayError::NotPatched(_))
        ));
        let n = f.runtime.patch_function(&mut f.process.memory, id).unwrap();
        assert!(n >= 2);
        assert!(f.runtime.is_patched(id));
        let log = Arc::new(BasicLog::new());
        f.runtime.set_handler(log.clone());
        f.runtime.dispatch(id, EventKind::Entry, 100, 0).unwrap();
        f.runtime.dispatch(id, EventKind::Exit, 200, 0).unwrap();
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.events()[0].kind, EventKind::Entry);
    }

    #[test]
    fn patching_is_idempotent() {
        let (mut f, main_id, _) = registered();
        let id = PackedId::pack(main_id, 0).unwrap();
        let first = f.runtime.patch_function(&mut f.process.memory, id).unwrap();
        let second = f.runtime.patch_function(&mut f.process.memory, id).unwrap();
        assert!(first > 0);
        assert_eq!(second, 0);
    }

    #[test]
    fn unpatch_restores_nop_state() {
        let (mut f, main_id, _) = registered();
        let id = PackedId::pack(main_id, 0).unwrap();
        f.runtime.patch_function(&mut f.process.memory, id).unwrap();
        f.runtime
            .unpatch_function(&mut f.process.memory, id)
            .unwrap();
        assert!(!f.runtime.is_patched(id));
    }

    #[test]
    fn patch_all_covers_object_with_one_mprotect_pair() {
        let (mut f, main_id, _) = registered();
        let before = f.process.memory.stats.mprotect_calls;
        let written = f.runtime.patch_all(&mut f.process.memory, main_id).unwrap();
        assert_eq!(written as usize, f.main_inst.sleds.total_sleds());
        assert_eq!(f.process.memory.stats.mprotect_calls - before, 2);
    }

    #[test]
    fn dso_dispatch_uses_pic_trampolines() {
        let (mut f, _, dso_id) = registered();
        let fid = f
            .dso_inst
            .sleds
            .fid_of(f.dso_inst.image.function_index("solve").unwrap())
            .unwrap();
        let id = PackedId::pack(dso_id, fid).unwrap();
        f.runtime.patch_function(&mut f.process.memory, id).unwrap();
        assert!(f.runtime.dispatch(id, EventKind::Entry, 0, 0).is_ok());
    }

    #[test]
    fn absolute_trampolines_in_relocated_dso_fault() {
        let f = fixture();
        f.runtime
            .register_main(
                f.main_inst.clone(),
                f.process.object(0).unwrap(),
                TrampolineSet::absolute(),
            )
            .unwrap();
        // Mis-linked DSO: absolute trampolines.
        let dso_id = f
            .runtime
            .register_dso(
                f.dso_inst.clone(),
                f.process.object(1).unwrap(),
                1,
                TrampolineSet::absolute(),
            )
            .unwrap();
        let mut f = f;
        let id = PackedId::pack(dso_id, 0).unwrap();
        f.runtime.patch_function(&mut f.process.memory, id).unwrap();
        assert!(matches!(
            f.runtime.dispatch(id, EventKind::Entry, 0, 0),
            Err(XRayError::Fault(_))
        ));
    }

    #[test]
    fn deregister_frees_slot_for_reuse() {
        let (f, _, dso_id) = registered();
        f.runtime.deregister(dso_id).unwrap();
        assert!(matches!(
            f.runtime.deregister(dso_id),
            Err(XRayError::UnknownObject(_))
        ));
        let again = f
            .runtime
            .register_dso(
                f.dso_inst.clone(),
                f.process.object(1).unwrap(),
                1,
                TrampolineSet::pic(),
            )
            .unwrap();
        assert_eq!(again, dso_id);
    }

    #[test]
    fn function_address_and_reverse_lookup_agree() {
        let (f, _, dso_id) = registered();
        let fid = f
            .dso_inst
            .sleds
            .fid_of(f.dso_inst.image.function_index("solve").unwrap())
            .unwrap();
        let id = PackedId::pack(dso_id, fid).unwrap();
        let addr = f.runtime.function_address(id).unwrap();
        assert_eq!(f.runtime.id_at_address(addr), Some(id));
        // Matches the loader's view.
        let resolved = f.process.resolve("solve").unwrap();
        assert_eq!(resolved.addr, addr);
    }

    #[test]
    fn id_at_address_boundaries() {
        let (f, main_id, dso_id) = registered();
        let inner_entries = |inst: &InstrumentedObject| {
            let mut offs: Vec<(u64, u32)> = inst
                .sleds
                .entries
                .iter()
                .map(|e| (e.entry_offset, e.fid))
                .collect();
            offs.sort_unstable();
            offs
        };
        for (oid, inst, base) in [
            (main_id, &f.main_inst, f.process.object(0).unwrap().base),
            (dso_id, &f.dso_inst, f.process.object(1).unwrap().base),
        ] {
            let offs = inner_entries(inst);
            assert!(!offs.is_empty());
            let (first_off, first_fid) = offs[0];
            let (last_off, last_fid) = *offs.last().unwrap();
            // Exact first and last entry addresses resolve.
            assert_eq!(
                f.runtime.id_at_address(base + first_off),
                PackedId::pack(oid, first_fid).ok()
            );
            assert_eq!(
                f.runtime.id_at_address(base + last_off),
                PackedId::pack(oid, last_fid).ok()
            );
            // One byte off either boundary does not (unless it happens to
            // be another object's entry — impossible here: bases are
            // disjoint and sleds start above the object base).
            assert_eq!(f.runtime.id_at_address(base + first_off + 1), None);
            if first_off > 0 {
                assert_eq!(f.runtime.id_at_address(base + first_off - 1), None);
            }
        }
        // Below every object base.
        let min_base = f
            .process
            .object(0)
            .unwrap()
            .base
            .min(f.process.object(1).unwrap().base);
        assert_eq!(f.runtime.id_at_address(min_base.saturating_sub(1)), None);
        // Way past everything.
        assert_eq!(f.runtime.id_at_address(u64::MAX), None);
    }

    #[test]
    fn snapshot_reflects_patch_state_and_generation() {
        let (mut f, main_id, _) = registered();
        let snap0 = f.runtime.snapshot();
        let id = PackedId::pack(main_id, 0).unwrap();
        f.runtime.patch_function(&mut f.process.memory, id).unwrap();
        let snap1 = f.runtime.snapshot();
        assert!(snap1.generation > snap0.generation);
        let entry = f.main_inst.sleds.by_fid(0).unwrap();
        let (packed, patched) = snap1.lookup(0, entry.func_index).unwrap();
        assert_eq!(packed, id);
        assert!(patched);
        let (_, was_patched) = snap0.lookup(0, entry.func_index).unwrap();
        assert!(!was_patched);
    }

    #[test]
    fn repatch_applies_batch_with_one_mprotect_pair_per_object() {
        let (mut f, main_id, dso_id) = registered();
        let m0 = PackedId::pack(main_id, 0).unwrap();
        let m1 = PackedId::pack(main_id, 1).unwrap();
        let d0 = PackedId::pack(dso_id, 0).unwrap();
        f.runtime.patch_function(&mut f.process.memory, m1).unwrap();
        let before = f.process.memory.stats.mprotect_calls;
        let rep = f
            .runtime
            .repatch(
                &mut f.process.memory,
                &PatchDelta {
                    patch: vec![m0, d0],
                    unpatch: vec![m1],
                    ..PatchDelta::default()
                },
            )
            .unwrap();
        // Two objects touched → two mprotect pairs.
        assert_eq!(rep.mprotect_pairs, 2);
        assert_eq!(f.process.memory.stats.mprotect_calls - before, 4);
        assert!(rep.sleds_patched >= 4); // m0 + d0, entry+exit each
        assert!(rep.sleds_unpatched >= 2);
        assert!(f.runtime.is_patched(m0));
        assert!(f.runtime.is_patched(d0));
        assert!(!f.runtime.is_patched(m1));
        assert_eq!(f.runtime.stats().repatches, 1);
        assert_eq!(f.runtime.patched_ids(), vec![m0, d0]);
    }

    #[test]
    fn repatch_conflicting_entries_unpatch_wins() {
        let (mut f, main_id, _) = registered();
        let id = PackedId::pack(main_id, 0).unwrap();
        // Unpatched function listed in both directions: stays unpatched.
        let rep = f
            .runtime
            .repatch(
                &mut f.process.memory,
                &PatchDelta {
                    patch: vec![id],
                    unpatch: vec![id],
                    ..PatchDelta::default()
                },
            )
            .unwrap();
        assert!(!f.runtime.is_patched(id));
        assert_eq!(rep.sleds_patched, 0);
        // Patched function in both directions: ends unpatched too.
        f.runtime.patch_function(&mut f.process.memory, id).unwrap();
        f.runtime
            .repatch(
                &mut f.process.memory,
                &PatchDelta {
                    patch: vec![id, id], // duplicates applied once
                    unpatch: vec![id],
                    ..PatchDelta::default()
                },
            )
            .unwrap();
        assert!(!f.runtime.is_patched(id));
    }

    #[test]
    fn patch_functions_validates_before_mutating() {
        let (mut f, main_id, _) = registered();
        let good = PackedId::pack(main_id, 0).unwrap();
        let writes_before = f.runtime.stats().sled_writes;
        let err = f
            .runtime
            .patch_functions(&mut f.process.memory, main_id, &[0, 9_999])
            .unwrap_err();
        assert!(matches!(err, XRayError::UnknownFunction(_)));
        // Nothing was applied: no patch flag, no sled writes, and the
        // published table still agrees with the inner state.
        assert!(!f.runtime.is_patched(good));
        assert_eq!(f.runtime.stats().sled_writes, writes_before);
        assert_eq!(f.runtime.patched_ids(), Vec::new());
    }

    #[test]
    fn repatch_validates_before_mutating() {
        let (mut f, main_id, _) = registered();
        let good = PackedId::pack(main_id, 0).unwrap();
        let bogus = PackedId::pack(main_id, 9_999).unwrap();
        let err = f
            .runtime
            .repatch(
                &mut f.process.memory,
                &PatchDelta {
                    patch: vec![good, bogus],
                    unpatch: vec![],
                    ..PatchDelta::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, XRayError::UnknownFunction(_)));
        // Nothing was applied.
        assert!(!f.runtime.is_patched(good));
    }

    #[test]
    fn repatch_surviving_skips_deregistered_object_and_applies_rest() {
        let (mut f, main_id, dso_id) = registered();
        let m0 = PackedId::pack(main_id, 0).unwrap();
        let d0 = PackedId::pack(dso_id, 0).unwrap();
        let bogus_fn = PackedId::pack(main_id, 9_999).unwrap();
        // The object vanishes between the decision and the repatch.
        f.runtime.deregister(dso_id).unwrap();
        let rep = f
            .runtime
            .repatch_surviving(
                &mut f.process.memory,
                &PatchDelta {
                    patch: vec![m0, d0],
                    unpatch: vec![bogus_fn],
                    set_rate: vec![(d0, 4)],
                },
            )
            .unwrap();
        // The surviving entry applied; the stale ones were counted, not
        // fatal — and never written through the vacated slot.
        assert!(f.runtime.is_patched(m0));
        assert_eq!(rep.skipped_objects, 1);
        assert_eq!(rep.skipped_entries, 3); // d0 patch + bogus fn + d0 rate
                                            // The strict path still fails the same delta typed.
        assert!(matches!(
            f.runtime.repatch(
                &mut f.process.memory,
                &PatchDelta {
                    patch: vec![d0],
                    ..PatchDelta::default()
                }
            ),
            Err(XRayError::UnknownObject(_))
        ));
    }

    #[test]
    fn unpatch_after_snapshot_is_tolerated_never_patched_faults() {
        let (mut f, main_id, _) = registered();
        let id = PackedId::pack(main_id, 0).unwrap();
        let never = PackedId::pack(main_id, 1).unwrap();
        f.runtime.patch_function(&mut f.process.memory, id).unwrap();
        let snap_gen = f.runtime.snapshot().generation;
        f.runtime
            .repatch(
                &mut f.process.memory,
                &PatchDelta {
                    patch: vec![],
                    unpatch: vec![id],
                    ..PatchDelta::default()
                },
            )
            .unwrap();
        // A dispatch working from the pre-repatch snapshot is tolerated.
        assert!(f
            .runtime
            .dispatch_from_snapshot(id, EventKind::Entry, 0, 0, snap_gen)
            .is_ok());
        assert_eq!(f.runtime.stats().stale_dispatches, 1);
        // A never-patched sled still faults from the same snapshot.
        assert!(matches!(
            f.runtime
                .dispatch_from_snapshot(never, EventKind::Entry, 0, 0, snap_gen),
            Err(XRayError::NotPatched(_))
        ));
        // And from the *current* generation the unpatched sled faults.
        assert!(matches!(
            f.runtime.dispatch(id, EventKind::Entry, 0, 0),
            Err(XRayError::NotPatched(_))
        ));
    }

    #[test]
    fn set_rate_samples_deterministically_and_counts_skips() {
        let (mut f, main_id, _) = registered();
        let id = PackedId::pack(main_id, 0).unwrap();
        f.runtime.patch_function(&mut f.process.memory, id).unwrap();
        f.runtime.set_handler(Arc::new(crate::handler::NullHandler));
        let before = f.process.memory.stats.mprotect_calls;
        let rep = f
            .runtime
            .repatch(
                &mut f.process.memory,
                &PatchDelta {
                    set_rate: vec![(id, 4)],
                    ..PatchDelta::default()
                },
            )
            .unwrap();
        // Rate-only deltas rewrite no sleds and flip no pages.
        assert_eq!(rep.rates_set, 1);
        assert_eq!(rep.mprotect_pairs, 0);
        assert_eq!(f.process.memory.stats.mprotect_calls, before);
        assert_eq!(f.runtime.sample_rate(id), 4);
        let generation = f.runtime.generation();
        let mut delivered = 0;
        for seq in 0..8u64 {
            let r = f
                .runtime
                .dispatch_sampled_from_snapshot(id, EventKind::Entry, seq, 0, generation, seq)
                .unwrap();
            if r.is_some() {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 2); // seq 0 and 4
        assert_eq!(f.runtime.stats().sampled_skips, 6);
        assert_eq!(f.runtime.stats().dispatches, 2);
    }

    #[test]
    fn rate_one_sampled_dispatch_matches_full_dispatch() {
        let (mut f, main_id, _) = registered();
        let id = PackedId::pack(main_id, 0).unwrap();
        f.runtime.patch_function(&mut f.process.memory, id).unwrap();
        let log = Arc::new(BasicLog::new());
        f.runtime.set_handler(log.clone());
        let generation = f.runtime.generation();
        for seq in 0..5u64 {
            let r = f
                .runtime
                .dispatch_sampled_from_snapshot(id, EventKind::Entry, seq, 0, generation, seq)
                .unwrap();
            assert!(r.is_some(), "rate 1 delivers every event");
        }
        assert_eq!(log.events().len(), 5);
        assert_eq!(f.runtime.stats().sampled_skips, 0);
    }

    #[test]
    fn repatching_a_function_resets_its_rate_to_one() {
        let (mut f, main_id, _) = registered();
        let id = PackedId::pack(main_id, 0).unwrap();
        f.runtime.patch_function(&mut f.process.memory, id).unwrap();
        f.runtime
            .repatch(
                &mut f.process.memory,
                &PatchDelta {
                    set_rate: vec![(id, 8)],
                    ..PatchDelta::default()
                },
            )
            .unwrap();
        assert_eq!(f.runtime.sample_rate(id), 8);
        // Unpatch, then re-patch: the function comes back at full rate.
        f.runtime
            .unpatch_function(&mut f.process.memory, id)
            .unwrap();
        f.runtime.patch_function(&mut f.process.memory, id).unwrap();
        assert_eq!(f.runtime.sample_rate(id), 1);
        // A delta that both patches and sets a rate ends sampled.
        f.runtime
            .unpatch_function(&mut f.process.memory, id)
            .unwrap();
        f.runtime
            .repatch(
                &mut f.process.memory,
                &PatchDelta {
                    patch: vec![id],
                    set_rate: vec![(id, 3)],
                    ..PatchDelta::default()
                },
            )
            .unwrap();
        assert!(f.runtime.is_patched(id));
        assert_eq!(f.runtime.sample_rate(id), 3);
        // Rates are clamped to ≥ 1 and visible in snapshots.
        f.runtime
            .repatch(
                &mut f.process.memory,
                &PatchDelta {
                    set_rate: vec![(id, 0)],
                    ..PatchDelta::default()
                },
            )
            .unwrap();
        assert_eq!(f.runtime.sample_rate(id), 1);
        let entry = f.main_inst.sleds.by_fid(0).unwrap();
        assert_eq!(f.runtime.snapshot().sample_rate(0, entry.func_index), 1);
    }

    #[test]
    fn set_rate_validates_ids_like_patching() {
        let (mut f, main_id, _) = registered();
        let bogus = PackedId::pack(main_id, 9_999).unwrap();
        let err = f
            .runtime
            .repatch(
                &mut f.process.memory,
                &PatchDelta {
                    set_rate: vec![(bogus, 2)],
                    ..PatchDelta::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, XRayError::UnknownFunction(_)));
    }

    #[test]
    fn stats_accumulate() {
        let (mut f, main_id, _) = registered();
        let id = PackedId::pack(main_id, 0).unwrap();
        f.runtime.patch_function(&mut f.process.memory, id).unwrap();
        f.runtime.set_handler(Arc::new(crate::handler::NullHandler));
        f.runtime.dispatch(id, EventKind::Entry, 0, 0).unwrap();
        let s = f.runtime.stats();
        assert_eq!(s.objects_registered, 2);
        assert!(s.sled_writes >= 2);
        assert_eq!(s.dispatches, 1);
    }
}
