//! Sleds and per-object sled tables.
//!
//! A *sled* is the fixed-size NOP placeholder XRay emits at every
//! instrumentation point (paper §V-A): long enough to be overwritten at
//! runtime with a jump to a trampoline. Each object carries a table of
//! its sleds ("a table of sled data … containing the addresses of each
//! sled alongside auxiliary information"); the runtime resolves this
//! table at registration time to make the sleds patchable.

use serde::{Deserialize, Serialize};

/// Size of one sled in bytes. Matches the x86-64 XRay sled: a 2-byte
/// short jump followed by 9 bytes of NOP padding, rounded to 12 here for
/// the simulated 4-byte instruction grid.
pub const SLED_BYTES: u64 = 12;

/// What kind of instrumentation point a sled marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SledKind {
    /// Function entry.
    Entry,
    /// Ordinary function exit (one per return site).
    Exit,
    /// Tail-call exit.
    TailExit,
}

/// Sled data for one instrumented function.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SledEntry {
    /// XRay function ID, unique *within the object* and assigned in sled
    /// table order — deliberately not the same numbering as the object's
    /// function layout, which is why DynCaPI must build an ID↔name map.
    pub fid: u32,
    /// Index of the function in its object's `functions` vector.
    pub func_index: u32,
    /// Object-relative offset of the entry sled.
    pub entry_offset: u64,
    /// Object-relative offsets of the exit sleds.
    pub exit_offsets: Vec<u64>,
}

impl SledEntry {
    /// Total number of sleds for this function.
    pub fn sled_count(&self) -> usize {
        1 + self.exit_offsets.len()
    }

    /// Iterates over all sled offsets with their kinds.
    pub fn offsets(&self) -> impl Iterator<Item = (u64, SledKind)> + '_ {
        std::iter::once((self.entry_offset, SledKind::Entry))
            .chain(self.exit_offsets.iter().map(|&o| (o, SledKind::Exit)))
    }
}

/// The sled table of one instrumented object.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SledTable {
    /// Entries ordered by function ID (`entries[fid].fid == fid`).
    pub entries: Vec<SledEntry>,
    /// Maps object function index → XRay function ID (None if the
    /// pre-filter skipped the function).
    pub fid_by_func: Vec<Option<u32>>,
}

impl SledTable {
    /// Number of instrumented functions.
    pub fn num_functions(&self) -> usize {
        self.entries.len()
    }

    /// Total sled count (entry + exit).
    pub fn total_sleds(&self) -> usize {
        self.entries.iter().map(SledEntry::sled_count).sum()
    }

    /// Sled entry by XRay function ID.
    pub fn by_fid(&self, fid: u32) -> Option<&SledEntry> {
        self.entries.get(fid as usize)
    }

    /// XRay function ID for an object function index.
    pub fn fid_of(&self, func_index: u32) -> Option<u32> {
        self.fid_by_func.get(func_index as usize).copied().flatten()
    }

    /// Lowest and highest sled offset — the page range the runtime must
    /// `mprotect` before bulk patching.
    pub fn sled_range(&self) -> Option<(u64, u64)> {
        let mut lo = u64::MAX;
        let mut hi = 0;
        for e in &self.entries {
            for (off, _) in e.offsets() {
                lo = lo.min(off);
                hi = hi.max(off + SLED_BYTES);
            }
        }
        (lo != u64::MAX).then_some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SledTable {
        SledTable {
            entries: vec![
                SledEntry {
                    fid: 0,
                    func_index: 2,
                    entry_offset: 0x100,
                    exit_offsets: vec![0x140, 0x180],
                },
                SledEntry {
                    fid: 1,
                    func_index: 5,
                    entry_offset: 0x200,
                    exit_offsets: vec![0x240],
                },
            ],
            fid_by_func: vec![None, None, Some(0), None, None, Some(1)],
        }
    }

    #[test]
    fn counts() {
        let t = table();
        assert_eq!(t.num_functions(), 2);
        assert_eq!(t.total_sleds(), 5);
    }

    #[test]
    fn fid_lookup_both_directions() {
        let t = table();
        assert_eq!(t.fid_of(2), Some(0));
        assert_eq!(t.fid_of(3), None);
        assert_eq!(t.by_fid(1).unwrap().func_index, 5);
        assert!(t.by_fid(9).is_none());
    }

    #[test]
    fn sled_range_covers_all_sleds() {
        let t = table();
        let (lo, hi) = t.sled_range().unwrap();
        assert_eq!(lo, 0x100);
        assert_eq!(hi, 0x240 + SLED_BYTES);
        assert_eq!(SledTable::default().sled_range(), None);
    }

    #[test]
    fn offsets_iterator_tags_kinds() {
        let t = table();
        let kinds: Vec<SledKind> = t.entries[0].offsets().map(|(_, k)| k).collect();
        assert_eq!(kinds, vec![SledKind::Entry, SledKind::Exit, SledKind::Exit]);
    }
}
