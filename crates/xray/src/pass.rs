//! The XRay machine pass (compile-time half of XRay).
//!
//! Paper §V-A: "a special LLVM machine pass processes all available
//! functions. Functions are pre-filtered to exclude those under a certain
//! instruction count threshold … A placeholder instruction is then
//! inserted at the entry and exit locations of each selected function."
//!
//! Because the pass runs after inlining, inlined functions simply do not
//! exist here — the root cause of the §V-E compensation. The pass mirrors
//! LLVM's knobs: `-fxray-instruction-threshold` and the
//! `xray-ignore-loops` behaviour (loop-bearing functions are instrumented
//! regardless of size unless loops are ignored), plus always/never
//! attribute lists.

use crate::sled::{SledEntry, SledTable, SLED_BYTES};
use capi_objmodel::Object;
use std::collections::HashSet;
use std::sync::Arc;

/// Pass configuration (the `-fxray-*` flags).
#[derive(Clone, Debug)]
pub struct PassOptions {
    /// Minimum instruction count for instrumentation
    /// (`-fxray-instruction-threshold`, LLVM default 200).
    pub instruction_threshold: u32,
    /// When false (default, like LLVM), functions containing loops are
    /// instrumented even below the threshold.
    pub ignore_loops: bool,
    /// Functions always instrumented (attribute list `always`).
    pub always_instrument: HashSet<String>,
    /// Functions never instrumented (attribute list `never`).
    pub never_instrument: HashSet<String>,
}

impl Default for PassOptions {
    fn default() -> Self {
        Self {
            instruction_threshold: 200,
            ignore_loops: false,
            always_instrument: HashSet::new(),
            never_instrument: HashSet::new(),
        }
    }
}

impl PassOptions {
    /// A pass that instruments everything (threshold 1, loops included) —
    /// what DynCaPI relies on: "all available functions are prepared for
    /// instrumentation without filtering" (paper §IV).
    pub fn instrument_all() -> Self {
        Self {
            instruction_threshold: 1,
            ..Self::default()
        }
    }
}

/// Statistics reported by the pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Functions examined.
    pub total_functions: usize,
    /// Functions that received sleds.
    pub instrumented: usize,
    /// Functions skipped by the instruction-count pre-filter.
    pub below_threshold: usize,
    /// Functions skipped via the `never` attribute list.
    pub never_listed: usize,
    /// Total sleds inserted.
    pub sleds: usize,
}

/// An object together with its XRay sled table — the output of compiling
/// with `-fxray-instrument`.
#[derive(Clone, Debug)]
pub struct InstrumentedObject {
    /// The compiled object image.
    pub image: Arc<Object>,
    /// The sled table the pass emitted into the object.
    pub sleds: SledTable,
    /// Pass statistics (for reports).
    pub stats: PassStats,
}

/// Runs the machine pass over `image`.
pub fn instrument_object(image: Arc<Object>, opts: &PassOptions) -> InstrumentedObject {
    let mut stats = PassStats {
        total_functions: image.num_functions(),
        ..Default::default()
    };
    let mut entries = Vec::new();
    let mut fid_by_func = vec![None; image.num_functions()];

    for (idx, f) in image.functions.iter().enumerate() {
        if opts.never_instrument.contains(&f.name) {
            stats.never_listed += 1;
            continue;
        }
        let forced = opts.always_instrument.contains(&f.name);
        let big_enough = f.instructions >= opts.instruction_threshold;
        let loop_bearing = !opts.ignore_loops && f.loop_depth > 0;
        if !(forced || big_enough || loop_bearing) {
            stats.below_threshold += 1;
            continue;
        }
        let fid = entries.len() as u32;
        // Entry sled sits at the function start; exit sleds before each
        // return site, spread through the tail of the body.
        let exits = (0..f.return_sites.max(1))
            .map(|k| {
                let back = (k as u64 + 1) * SLED_BYTES;
                f.offset + (f.size as u64).saturating_sub(back).max(SLED_BYTES)
            })
            .collect();
        entries.push(SledEntry {
            fid,
            func_index: idx as u32,
            entry_offset: f.offset,
            exit_offsets: exits,
        });
        fid_by_func[idx] = Some(fid);
        stats.instrumented += 1;
    }
    let sleds = SledTable {
        entries,
        fid_by_func,
    };
    stats.sleds = sleds.total_sleds();
    InstrumentedObject {
        image,
        sleds,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capi_appmodel::{LinkTarget, ProgramBuilder};
    use capi_objmodel::{compile, CompileOptions};

    fn exe() -> Arc<Object> {
        let mut b = ProgramBuilder::new("app");
        b.unit("m.cc", LinkTarget::Executable);
        b.function("main")
            .main()
            .statements(50)
            .instructions(500)
            .calls("kernel", 1)
            .calls("tiny_leaf", 1)
            .calls("small_loop", 1)
            .finish();
        b.function("kernel")
            .statements(80)
            .instructions(900)
            .loop_depth(2)
            .finish();
        // 40 instructions, below the 200 threshold, no loop.
        b.function("tiny_leaf")
            .statements(30)
            .instructions(40)
            .finish();
        // 40 instructions but contains a loop.
        b.function("small_loop")
            .statements(30)
            .instructions(40)
            .loop_depth(1)
            .finish();
        let p = b.build().unwrap();
        Arc::new(compile(&p, &CompileOptions::o2()).unwrap().executable)
    }

    #[test]
    fn threshold_prefilter_skips_small_functions() {
        let io = instrument_object(exe(), &PassOptions::default());
        assert!(io
            .sleds
            .fid_of(io.image.function_index("tiny_leaf").unwrap())
            .is_none());
        assert!(io
            .sleds
            .fid_of(io.image.function_index("kernel").unwrap())
            .is_some());
        assert_eq!(io.stats.below_threshold, 1);
    }

    #[test]
    fn loop_bearing_functions_instrumented_below_threshold() {
        let io = instrument_object(exe(), &PassOptions::default());
        assert!(io
            .sleds
            .fid_of(io.image.function_index("small_loop").unwrap())
            .is_some());
        let ignore = PassOptions {
            ignore_loops: true,
            ..PassOptions::default()
        };
        let io2 = instrument_object(exe(), &ignore);
        assert!(io2
            .sleds
            .fid_of(io2.image.function_index("small_loop").unwrap())
            .is_none());
    }

    #[test]
    fn instrument_all_covers_everything() {
        let io = instrument_object(exe(), &PassOptions::instrument_all());
        assert_eq!(io.stats.instrumented, io.image.num_functions());
        assert!(io.stats.sleds >= 2 * io.stats.instrumented);
    }

    #[test]
    fn always_and_never_lists_override() {
        let mut opts = PassOptions::default();
        opts.always_instrument.insert("tiny_leaf".into());
        opts.never_instrument.insert("kernel".into());
        let io = instrument_object(exe(), &opts);
        assert!(io
            .sleds
            .fid_of(io.image.function_index("tiny_leaf").unwrap())
            .is_some());
        assert!(io
            .sleds
            .fid_of(io.image.function_index("kernel").unwrap())
            .is_none());
        assert_eq!(io.stats.never_listed, 1);
    }

    #[test]
    fn fids_are_dense_and_table_ordered() {
        let io = instrument_object(exe(), &PassOptions::instrument_all());
        for (i, e) in io.sleds.entries.iter().enumerate() {
            assert_eq!(e.fid, i as u32);
        }
    }

    #[test]
    fn entry_sled_at_function_start() {
        let io = instrument_object(exe(), &PassOptions::instrument_all());
        for e in &io.sleds.entries {
            let f = io.image.function(e.func_index);
            assert_eq!(e.entry_offset, f.offset);
            for &x in &e.exit_offsets {
                assert!(x >= f.offset);
                assert!(x + SLED_BYTES <= f.offset + f.size as u64 + SLED_BYTES);
            }
        }
    }
}
