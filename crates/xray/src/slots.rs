//! Dynamic per-thread reader-slot registration.
//!
//! The dispatch fast path used to map ranks onto a fixed array of 64
//! counter/guard stripes by `rank & 63`. That cap had two costs at
//! scale: ranks beyond 64 folded onto shared stripes (so two folded
//! ranks with overlapping dispatch windows could keep a stripe's
//! in-flight count permanently nonzero and stall a publisher's
//! quiescence wait), and per-rank counter attribution silently aliased.
//!
//! [`SlotRegistry`] replaces the fixed array with a growable set of
//! cache-padded [`ReaderSlot`]s:
//!
//! * A thread claims a slot **lazily** on its first dispatch for a given
//!   rank; the claim is cached in a thread-local so the steady-state
//!   fast path is a short thread-local vector scan plus two uncontended
//!   atomic RMWs on a line no other thread writes.
//! * When the thread exits, its claims are **recycled**: the slot's
//!   counters are folded into a per-rank retired-totals accumulator and
//!   the slot index returns to a free list, so a later claimant starts
//!   from zero and never inherits a departed thread's
//!   `dispatches`/`sampled_skips`.
//! * Growth is bounded by the `CAPI_READER_SLOTS_MAX` knob (default
//!   4096). Beyond the bound, claims fall back to *sharing* an existing
//!   slot (`rank % allocated`) — aggregate counters stay exact, per-rank
//!   attribution degrades to folded, and the publisher's wait set stops
//!   growing. Zero is rejected: with no slots there is nowhere to count
//!   an in-flight dispatch, and the quiescence protocol would be
//!   unsound.
//!
//! A publisher's quiescence wait snapshots the slot list *after* its
//! SeqCst pointer swap. Claims are serialized through the same mutex
//! that guards the list, so any slot claimed after the snapshot was
//! taken belongs to a reader that can only ever observe the new table —
//! the publisher never needs to wait on it.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Default cap on allocated reader slots when `CAPI_READER_SLOTS_MAX`
/// is unset: comfortably above any rank count the simulator drives
/// while bounding the publisher's quiescence scan.
pub(crate) const DEFAULT_READER_SLOTS_MAX: usize = 4096;

/// One cache-padded reader slot: the in-flight dispatch guard plus the
/// event counters for the thread/rank that currently owns it.
#[repr(align(64))]
#[derive(Default)]
pub(crate) struct ReaderSlot {
    /// Dispatches currently inside the fast path on this slot. A
    /// publisher may not free a superseded table until every slot
    /// reads zero at least once after the pointer swap.
    pub in_flight: AtomicU64,
    /// Events dispatched to the handler.
    pub dispatches: AtomicU64,
    /// Dispatches tolerated through the stale-snapshot path.
    pub stale_dispatches: AtomicU64,
    /// Sampled-mode dispatches skipped by the 1-in-N counter (the sled
    /// fired but the event was not delivered to the handler).
    pub sampled_skips: AtomicU64,
    /// Rank the current claimant attributes its counters to
    /// (telemetry-only; counters themselves are exact regardless).
    pub rank: AtomicU32,
}

/// Counter totals folded out of recycled slots, keyed by rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct RetiredTotals {
    /// Events dispatched to the handler by departed claimants.
    pub dispatches: u64,
    /// Stale-tolerated dispatches by departed claimants.
    pub stale_dispatches: u64,
    /// Sampled-mode skips by departed claimants.
    pub sampled_skips: u64,
}

struct SlotList {
    /// Grow-only storage: a slot's `Arc` is never removed, so a raw
    /// `&ReaderSlot` handed to the fast path stays valid for the
    /// registry's lifetime.
    slots: Vec<Arc<ReaderSlot>>,
    /// Indexes of recycled slots available for the next claimant.
    free: Vec<usize>,
}

pub(crate) struct RegistryInner {
    /// Process-unique registry identity, so one thread's claim cache can
    /// hold claims against several runtimes without confusing them.
    id: u64,
    max_slots: usize,
    list: Mutex<SlotList>,
    /// Dedicated slot for control-plane readers (`is_patched`,
    /// `snapshot`): a polling control thread must not share a slot with
    /// a rank and starve the publisher by overlapping its windows.
    control: Arc<ReaderSlot>,
    /// Fold-on-release accumulator: counters of departed claimants,
    /// keyed by the rank they were attributed to.
    retired: Mutex<BTreeMap<u32, RetiredTotals>>,
}

impl RegistryInner {
    /// Claims a slot for `rank`: recycles a free slot, grows the list,
    /// or — past `max_slots` — falls back to sharing an existing slot.
    fn claim(self: &Arc<Self>, rank: u32) -> ClaimedSlot {
        let mut list = self.list.lock();
        let (index, owned) = if let Some(i) = list.free.pop() {
            // Recycled slot: release already folded + zeroed its
            // counters, so the new claimant starts from scratch.
            (i, true)
        } else if list.slots.len() < self.max_slots {
            list.slots.push(Arc::new(ReaderSlot::default()));
            (list.slots.len() - 1, true)
        } else {
            // Over the cap: share. Aggregate counters stay exact, but
            // attribution folds onto the host slot's rank and the slot
            // is never recycled by this claimant.
            (rank as usize % list.slots.len(), false)
        };
        let slot = Arc::clone(&list.slots[index]);
        if owned {
            slot.rank.store(rank, Ordering::Relaxed);
        }
        ClaimedSlot {
            registry_id: self.id,
            rank,
            index,
            owned,
            slot,
            registry: Arc::downgrade(self),
        }
    }

    /// Recycles a departed claimant's slot: folds its counters into the
    /// retired accumulator under its attributed rank, then returns the
    /// index to the free list. Holding the list lock across the fold
    /// serializes against the next claim, so the claimant can never see
    /// a half-folded slot.
    fn release(&self, index: usize) {
        let mut list = self.list.lock();
        let slot = Arc::clone(&list.slots[index]);
        let rank = slot.rank.load(Ordering::Relaxed);
        let folded = RetiredTotals {
            dispatches: slot.dispatches.swap(0, Ordering::Relaxed),
            stale_dispatches: slot.stale_dispatches.swap(0, Ordering::Relaxed),
            sampled_skips: slot.sampled_skips.swap(0, Ordering::Relaxed),
        };
        let mut retired = self.retired.lock();
        let entry = retired.entry(rank).or_default();
        entry.dispatches += folded.dispatches;
        entry.stale_dispatches += folded.stale_dispatches;
        entry.sampled_skips += folded.sampled_skips;
        drop(retired);
        list.free.push(index);
    }
}

/// The growable reader-slot registry owned by one runtime.
pub(crate) struct SlotRegistry {
    inner: Arc<RegistryInner>,
}

/// Parses `CAPI_READER_SLOTS_MAX`. Zero (or garbage) is rejected back
/// to the default: a registry with no slots could not count an
/// in-flight dispatch anywhere, which would void the publisher's
/// quiescence guarantee.
fn slots_max_from_env() -> usize {
    match std::env::var("CAPI_READER_SLOTS_MAX") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => DEFAULT_READER_SLOTS_MAX,
        },
        Err(_) => DEFAULT_READER_SLOTS_MAX,
    }
}

static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(1);

impl SlotRegistry {
    pub(crate) fn new() -> Self {
        Self::with_max(slots_max_from_env())
    }

    /// Registry with an explicit slot cap (`max` is clamped to ≥ 1 for
    /// the same soundness reason `slots_max_from_env` rejects zero).
    pub(crate) fn with_max(max: usize) -> Self {
        Self {
            inner: Arc::new(RegistryInner {
                id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
                max_slots: max.max(1),
                list: Mutex::new(SlotList {
                    slots: Vec::new(),
                    free: Vec::new(),
                }),
                control: Arc::new(ReaderSlot::default()),
                retired: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// The control-plane slot (snapshot/is_patched readers).
    #[inline]
    pub(crate) fn control(&self) -> &ReaderSlot {
        &self.inner.control
    }

    /// The calling thread's slot for `rank`, claiming one on first use.
    ///
    /// Steady state is a linear scan of the thread's (tiny) claim cache
    /// — no lock, no shared write outside the returned slot.
    #[inline]
    pub(crate) fn slot_for(&self, rank: u32) -> &ReaderSlot {
        let id = self.inner.id;
        let ptr = CLAIMS.with(|claims| {
            let mut claims = claims.borrow_mut();
            if let Some(c) = claims
                .claims
                .iter()
                .find(|c| c.registry_id == id && c.rank == rank)
            {
                return Arc::as_ptr(&c.slot);
            }
            let claim = self.inner.claim(rank);
            let p = Arc::as_ptr(&claim.slot);
            claims.claims.push(claim);
            p
        });
        // SAFETY: the registry's slot storage is grow-only — every
        // slot's Arc (and the claim cache's own clone) stays alive at
        // least as long as `self`, so the pointer dereferences to a
        // live slot for the duration of the returned borrow.
        unsafe { &*ptr }
    }

    /// Every slot the publisher must wait on: all allocated rank slots
    /// plus the control slot. Snapshotting *after* the pointer swap is
    /// what makes the dynamic claim protocol sound (see module docs).
    pub(crate) fn quiescence_set(&self) -> Vec<Arc<ReaderSlot>> {
        let list = self.inner.list.lock();
        let mut slots = list.slots.clone();
        slots.push(Arc::clone(&self.inner.control));
        slots
    }

    /// All allocated rank slots (control excluded): the counter-carrying
    /// set for stats folding and telemetry export. Free-listed slots are
    /// included but zeroed, so folding them is exact.
    pub(crate) fn counter_slots(&self) -> Vec<Arc<ReaderSlot>> {
        self.inner.list.lock().slots.clone()
    }

    /// Per-rank counter totals folded out of recycled slots.
    pub(crate) fn retired_totals(&self) -> BTreeMap<u32, RetiredTotals> {
        self.inner.retired.lock().clone()
    }

    /// Number of allocated slots (claimed + free-listed, control
    /// excluded). Grows on demand, never shrinks.
    pub(crate) fn allocated(&self) -> usize {
        self.inner.list.lock().slots.len()
    }

    /// Pre-claims the calling thread's slot for `rank`, so the first
    /// dispatch doesn't pay the claim lock.
    pub(crate) fn register(&self, rank: u32) {
        let _ = self.slot_for(rank);
    }
}

/// One cached claim held by a thread.
struct ClaimedSlot {
    registry_id: u64,
    rank: u32,
    index: usize,
    owned: bool,
    slot: Arc<ReaderSlot>,
    registry: Weak<RegistryInner>,
}

#[derive(Default)]
struct ThreadClaims {
    claims: Vec<ClaimedSlot>,
}

impl Drop for ThreadClaims {
    fn drop(&mut self) {
        for claim in self.claims.drain(..) {
            if !claim.owned {
                continue; // shared overflow slot: the host claim recycles it
            }
            if let Some(registry) = claim.registry.upgrade() {
                registry.release(claim.index);
            }
        }
    }
}

thread_local! {
    /// The calling thread's claim cache; its `Drop` at thread exit is
    /// what recycles slots.
    static CLAIMS: RefCell<ThreadClaims> = RefCell::new(ThreadClaims::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_is_cached_and_reused_per_rank() {
        let reg = SlotRegistry::with_max(8);
        let a = reg.slot_for(3) as *const ReaderSlot;
        let b = reg.slot_for(3) as *const ReaderSlot;
        assert_eq!(a, b, "same thread+rank reuses the cached claim");
        let c = reg.slot_for(4) as *const ReaderSlot;
        assert_ne!(a, c, "distinct ranks get distinct slots");
        assert_eq!(reg.allocated(), 2);
    }

    #[test]
    fn distinct_registries_do_not_share_claims() {
        let r1 = SlotRegistry::with_max(8);
        let r2 = SlotRegistry::with_max(8);
        r1.slot_for(0).dispatches.fetch_add(5, Ordering::Relaxed);
        assert_eq!(r2.slot_for(0).dispatches.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn thread_exit_recycles_slot_and_folds_counters() {
        let reg = SlotRegistry::with_max(8);
        std::thread::scope(|s| {
            s.spawn(|| {
                let slot = reg.slot_for(7);
                slot.dispatches.fetch_add(3, Ordering::Relaxed);
                slot.sampled_skips.fetch_add(2, Ordering::Relaxed);
            })
            .join()
            .unwrap();
        });
        // Counters folded under rank 7, slot back on the free list.
        let retired = reg.retired_totals();
        assert_eq!(retired[&7].dispatches, 3);
        assert_eq!(retired[&7].sampled_skips, 2);
        assert_eq!(reg.allocated(), 1);

        // A new claimant (same rank, different thread) starts from zero:
        // departed counters live in `retired`, never in the new stripe.
        std::thread::scope(|s| {
            s.spawn(|| {
                let slot = reg.slot_for(7);
                assert_eq!(slot.dispatches.load(Ordering::Relaxed), 0);
                assert_eq!(slot.sampled_skips.load(Ordering::Relaxed), 0);
                slot.dispatches.fetch_add(1, Ordering::Relaxed);
            })
            .join()
            .unwrap();
        });
        assert_eq!(reg.allocated(), 1, "slot was recycled, not re-allocated");
        assert_eq!(reg.retired_totals()[&7].dispatches, 4);
    }

    #[test]
    fn overflow_claims_share_without_recycling() {
        let reg = SlotRegistry::with_max(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                // Ranks 0 and 1 fill the registry; ranks 2 and 3 share.
                let s0 = reg.slot_for(0) as *const ReaderSlot;
                let s1 = reg.slot_for(1) as *const ReaderSlot;
                let s2 = reg.slot_for(2) as *const ReaderSlot;
                let s3 = reg.slot_for(3) as *const ReaderSlot;
                assert_ne!(s0, s1);
                assert_eq!(s2, s0, "overflow folds by rank % allocated");
                assert_eq!(s3, s1);
                reg.slot_for(2).dispatches.fetch_add(9, Ordering::Relaxed);
            })
            .join()
            .unwrap();
        });
        assert_eq!(reg.allocated(), 2);
        // Only the two owned claims folded; the shared claim's events
        // were folded once (through the host slot), not twice.
        let retired = reg.retired_totals();
        let total: u64 = retired.values().map(|t| t.dispatches).sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn quiescence_set_includes_control() {
        let reg = SlotRegistry::with_max(8);
        reg.register(0);
        let set = reg.quiescence_set();
        assert_eq!(set.len(), 2);
        assert!(set.iter().any(|s| std::ptr::eq(s.as_ref(), reg.control())));
    }

    #[test]
    fn zero_max_is_clamped() {
        let reg = SlotRegistry::with_max(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                reg.slot_for(0).dispatches.fetch_add(1, Ordering::Relaxed);
                reg.slot_for(9).dispatches.fetch_add(1, Ordering::Relaxed);
            })
            .join()
            .unwrap();
        });
        assert_eq!(reg.allocated(), 1);
        let total: u64 = reg.retired_totals().values().map(|t| t.dispatches).sum();
        assert_eq!(total, 2);
    }
}
