//! XRay's built-in logging modes.
//!
//! The real XRay ships pre-existing handler modes (paper §V-A: "XRay
//! provides a few different pre-existing modes, each defining their own
//! handler functions"). Two are reproduced:
//!
//! * [`BasicLog`] — basic mode: append every event to an in-memory trace.
//! * [`FdrBuffer`] — flight-data-recorder mode: a fixed-size ring buffer
//!   of encoded records; the newest events overwrite the oldest, bounding
//!   memory for long runs.

use crate::handler::{Event, EventKind, Handler};
use crate::packed_id::PackedId;
use bytes::{Buf, BufMut, BytesMut};
use parking_lot::Mutex;

/// Basic-mode in-memory trace log.
#[derive(Default)]
pub struct BasicLog {
    events: Mutex<Vec<Event>>,
    /// Virtual cost per event in ns (basic mode writes a record; modelled
    /// as a small constant).
    pub cost_ns: u64,
}

impl BasicLog {
    /// Creates an empty log with the default per-event cost.
    pub fn new() -> Self {
        Self {
            events: Mutex::new(Vec::new()),
            cost_ns: 25,
        }
    }

    /// Snapshot of all recorded events.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Clears the log.
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

impl Handler for BasicLog {
    fn on_event(&self, event: Event) -> u64 {
        self.events.lock().push(event);
        self.cost_ns
    }
}

/// Size of one encoded FDR record:
/// 4 (packed id) + 1 (kind) + 8 (tsc) + 4 (rank) bytes.
const RECORD_BYTES: usize = 17;

/// Flight-data-recorder mode: bounded ring buffer of encoded events.
pub struct FdrBuffer {
    inner: Mutex<FdrInner>,
    capacity_records: usize,
}

struct FdrInner {
    buf: BytesMut,
    /// Total events ever written (for overwrite accounting).
    written: u64,
}

impl FdrBuffer {
    /// Creates a buffer retaining at most `capacity_records` events.
    pub fn new(capacity_records: usize) -> Self {
        assert!(capacity_records > 0, "FDR buffer needs capacity");
        Self {
            inner: Mutex::new(FdrInner {
                buf: BytesMut::with_capacity(capacity_records * RECORD_BYTES),
                written: 0,
            }),
            capacity_records,
        }
    }

    /// Decodes the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let inner = self.inner.lock();
        let mut out = Vec::with_capacity(inner.buf.len() / RECORD_BYTES);
        let mut view = &inner.buf[..];
        while view.len() >= RECORD_BYTES {
            let id = PackedId::from_raw(view.get_u32());
            let kind = match view.get_u8() {
                0 => EventKind::Entry,
                1 => EventKind::Exit,
                _ => EventKind::TailExit,
            };
            let tsc = view.get_u64();
            let rank = view.get_u32();
            out.push(Event {
                id,
                kind,
                tsc,
                rank,
            });
        }
        out
    }

    /// Total events written over the buffer's lifetime (≥ retained).
    pub fn total_written(&self) -> u64 {
        self.inner.lock().written
    }

    /// Events currently retained.
    pub fn retained(&self) -> usize {
        self.inner.lock().buf.len() / RECORD_BYTES
    }
}

impl Handler for FdrBuffer {
    fn on_event(&self, event: Event) -> u64 {
        let mut inner = self.inner.lock();
        if inner.buf.len() >= self.capacity_records * RECORD_BYTES {
            // Drop the oldest record.
            inner.buf.advance(RECORD_BYTES);
        }
        inner.buf.put_u32(event.id.raw());
        inner.buf.put_u8(match event.kind {
            EventKind::Entry => 0,
            EventKind::Exit => 1,
            EventKind::TailExit => 2,
        });
        inner.buf.put_u64(event.tsc);
        inner.buf.put_u32(event.rank);
        inner.written += 1;
        15 // FDR is cheaper than basic mode: fixed-size encode, no realloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(fid: u32, kind: EventKind, tsc: u64) -> Event {
        Event {
            id: PackedId::pack(1, fid).unwrap(),
            kind,
            tsc,
            rank: 3,
        }
    }

    #[test]
    fn basic_log_records_in_order() {
        let log = BasicLog::new();
        log.on_event(ev(1, EventKind::Entry, 10));
        log.on_event(ev(1, EventKind::Exit, 20));
        let evs = log.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].tsc, 10);
        assert_eq!(evs[1].kind, EventKind::Exit);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn fdr_round_trips_encoding() {
        let fdr = FdrBuffer::new(8);
        fdr.on_event(ev(42, EventKind::Entry, 123));
        fdr.on_event(ev(42, EventKind::TailExit, 456));
        let evs = fdr.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].id.function(), 42);
        assert_eq!(evs[0].id.object(), 1);
        assert_eq!(evs[0].rank, 3);
        assert_eq!(evs[1].kind, EventKind::TailExit);
        assert_eq!(evs[1].tsc, 456);
    }

    #[test]
    fn fdr_overwrites_oldest_when_full() {
        let fdr = FdrBuffer::new(3);
        for i in 0..10u64 {
            fdr.on_event(ev(i as u32, EventKind::Entry, i));
        }
        assert_eq!(fdr.retained(), 3);
        assert_eq!(fdr.total_written(), 10);
        let evs = fdr.events();
        let tscs: Vec<u64> = evs.iter().map(|e| e.tsc).collect();
        assert_eq!(tscs, vec![7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn fdr_zero_capacity_panics() {
        let _ = FdrBuffer::new(0);
    }
}
