//! XRay's built-in logging modes.
//!
//! The real XRay ships pre-existing handler modes (paper §V-A: "XRay
//! provides a few different pre-existing modes, each defining their own
//! handler functions"). Two are reproduced, each in a single-mutex and a
//! per-rank sharded flavor:
//!
//! * [`BasicLog`] — basic mode: append every event to an in-memory trace.
//! * [`FdrBuffer`] — flight-data-recorder mode: a fixed-size ring buffer
//!   of encoded records; the newest events overwrite the oldest, bounding
//!   memory for long runs.
//! * [`ShardedLog`] / [`ShardedFdr`] — the multi-rank hot-path variants:
//!   every rank appends to its own cache-padded shard, so concurrent
//!   ranks never contend on a shared lock or cache line. A deterministic
//!   merge (stable order: rank, then per-rank sequence number) makes
//!   [`ShardedLog::events`] byte-identical across runs whenever each
//!   rank's own event stream is deterministic — the property the live
//!   adaptation tests assert.

use crate::handler::{Event, EventKind, Handler};
use crate::packed_id::PackedId;
use bytes::{Buf, BufMut, BytesMut};
use parking_lot::Mutex;
use std::sync::Arc;

/// Basic-mode in-memory trace log.
///
/// Events live behind `Mutex<Arc<Vec<_>>>` so [`BasicLog::events`] holds
/// the lock only for an `Arc` clone (O(1)) and deep-copies *outside* it.
/// The steady-state push mutates in place; the first push racing a
/// still-live snapshot pays the deep copy instead (`Arc::make_mut`),
/// under the lock — the copy cost moves from every `events()` call to
/// at most one append per outstanding snapshot. For contention-free
/// multi-rank appends use [`ShardedLog`].
#[derive(Default)]
pub struct BasicLog {
    events: Mutex<Arc<Vec<Event>>>,
    /// Virtual cost per event in ns (basic mode writes a record; modelled
    /// as a small constant).
    pub cost_ns: u64,
}

impl BasicLog {
    /// Creates an empty log with the default per-event cost.
    pub fn new() -> Self {
        Self {
            events: Mutex::new(Arc::new(Vec::new())),
            cost_ns: 25,
        }
    }

    /// Snapshot of all recorded events. The clone happens outside the
    /// lock, so this call itself blocks concurrent ranks for O(1); the
    /// next append while the snapshot is alive pays the copy instead.
    pub fn events(&self) -> Vec<Event> {
        let snapshot = Arc::clone(&self.events.lock());
        snapshot.as_slice().to_vec()
    }

    /// Runs `f` over the recorded events without cloning any of them —
    /// what tests should use to assert on the trace.
    pub fn with_events<R>(&self, f: impl FnOnce(&[Event]) -> R) -> R {
        let snapshot = Arc::clone(&self.events.lock());
        f(&snapshot)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Clears the log.
    pub fn clear(&self) {
        *self.events.lock() = Arc::new(Vec::new());
    }
}

impl Handler for BasicLog {
    fn on_event(&self, event: Event) -> u64 {
        Arc::make_mut(&mut *self.events.lock()).push(event);
        self.cost_ns
    }
}

/// Size of one encoded FDR record:
/// 4 (packed id) + 1 (kind) + 8 (tsc) + 4 (rank) bytes.
const RECORD_BYTES: usize = 17;

fn encode_record(buf: &mut BytesMut, event: &Event) {
    buf.put_u32(event.id.raw());
    buf.put_u8(match event.kind {
        EventKind::Entry => 0,
        EventKind::Exit => 1,
        EventKind::TailExit => 2,
    });
    buf.put_u64(event.tsc);
    buf.put_u32(event.rank);
}

fn decode_records(buf: &[u8], out: &mut Vec<Event>) {
    let mut view = buf;
    while view.len() >= RECORD_BYTES {
        let id = PackedId::from_raw(view.get_u32());
        let kind = match view.get_u8() {
            0 => EventKind::Entry,
            1 => EventKind::Exit,
            _ => EventKind::TailExit,
        };
        let tsc = view.get_u64();
        let rank = view.get_u32();
        out.push(Event {
            id,
            kind,
            tsc,
            rank,
        });
    }
}

/// Flight-data-recorder mode: bounded ring buffer of encoded events.
pub struct FdrBuffer {
    inner: Mutex<FdrInner>,
    capacity_records: usize,
}

struct FdrInner {
    buf: BytesMut,
    /// Total events ever written (for overwrite accounting).
    written: u64,
}

impl FdrBuffer {
    /// Creates a buffer retaining at most `capacity_records` events.
    pub fn new(capacity_records: usize) -> Self {
        assert!(capacity_records > 0, "FDR buffer needs capacity");
        Self {
            inner: Mutex::new(FdrInner {
                buf: BytesMut::with_capacity(capacity_records * RECORD_BYTES),
                written: 0,
            }),
            capacity_records,
        }
    }

    /// Decodes the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let inner = self.inner.lock();
        let mut out = Vec::with_capacity(inner.buf.len() / RECORD_BYTES);
        decode_records(&inner.buf, &mut out);
        out
    }

    /// Total events written over the buffer's lifetime (≥ retained).
    pub fn total_written(&self) -> u64 {
        self.inner.lock().written
    }

    /// Events currently retained.
    pub fn retained(&self) -> usize {
        self.inner.lock().buf.len() / RECORD_BYTES
    }
}

impl Handler for FdrBuffer {
    fn on_event(&self, event: Event) -> u64 {
        let mut inner = self.inner.lock();
        if inner.buf.len() >= self.capacity_records * RECORD_BYTES {
            // Drop the oldest record.
            inner.buf.advance(RECORD_BYTES);
        }
        encode_record(&mut inner.buf, &event);
        inner.written += 1;
        15 // FDR is cheaper than basic mode: fixed-size encode, no realloc
    }
}

/// One cache-padded shard of a sharded sink. The padding keeps rank R's
/// append from invalidating rank R±1's cache line; the per-shard mutex
/// exists only to satisfy `&self` interior mutability — with one rank
/// per shard it is never contended, so the append path never waits.
#[repr(align(64))]
struct Shard<T> {
    inner: Mutex<T>,
}

impl<T> Shard<T> {
    fn new(value: T) -> Self {
        Self {
            inner: Mutex::new(value),
        }
    }
}

struct LogShard {
    /// `(per-rank sequence number, event)` in append order.
    events: Vec<(u64, Event)>,
    next_seq: u64,
}

/// Basic-mode trace sharded by rank: each rank appends to its own
/// cache-padded buffer, and [`ShardedLog::events`] merges them in the
/// deterministic order (rank, per-rank sequence number). Two runs whose
/// per-rank streams are identical therefore produce byte-identical
/// merged traces, regardless of how the rank threads interleaved.
pub struct ShardedLog {
    shards: Box<[Shard<LogShard>]>,
    /// Virtual cost per event in ns (same record write as [`BasicLog`]).
    pub cost_ns: u64,
}

impl ShardedLog {
    /// Creates a log with one shard per expected rank. Ranks beyond
    /// `ranks` fold onto shards modulo the shard count — appends then
    /// contend on the shared shard, but the merge stays deterministic:
    /// [`Self::events`] stable-sorts by rank, which restores rank-major
    /// order and each rank's own append order regardless of how folded
    /// ranks interleaved. Sizing to the world's rank count gives the
    /// contention-free fast path.
    pub fn new(ranks: u32) -> Self {
        let n = ranks.max(1) as usize;
        Self {
            shards: (0..n)
                .map(|_| {
                    Shard::new(LogShard {
                        events: Vec::new(),
                        next_seq: 0,
                    })
                })
                .collect(),
            cost_ns: 25,
        }
    }

    #[inline]
    fn shard(&self, rank: u32) -> &Shard<LogShard> {
        &self.shards[rank as usize % self.shards.len()]
    }

    /// Number of shards (== ranks it was sized for).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Deterministically merged trace: rank order, each rank's events in
    /// its own append (sequence) order. The stable sort is a no-op scan
    /// when every rank owns its shard, and restores determinism when
    /// ranks were folded onto shared shards.
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            let guard = shard.inner.lock();
            debug_assert!(
                guard.events.windows(2).all(|w| w[0].0 < w[1].0),
                "per-shard sequence numbers are strictly increasing"
            );
            out.extend(guard.events.iter().map(|&(_, e)| e));
        }
        // Stable: preserves each rank's per-shard append order.
        out.sort_by_key(|e| e.rank);
        out
    }

    /// Runs `f` over the merged trace without handing out a clone to the
    /// caller (one internal merge buffer is still materialized).
    pub fn with_events<R>(&self, f: impl FnOnce(&[Event]) -> R) -> R {
        f(&self.events())
    }

    /// Events of one rank, in its append order (filtered by the event's
    /// actual rank, so folded shards do not leak co-owners' events).
    pub fn rank_events(&self, rank: u32) -> Vec<Event> {
        self.shard(rank)
            .inner
            .lock()
            .events
            .iter()
            .filter(|(_, e)| e.rank == rank)
            .map(|&(_, e)| e)
            .collect()
    }

    /// Total recorded events across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.inner.lock().events.len())
            .sum()
    }

    /// Whether no shard recorded anything.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.inner.lock().events.is_empty())
    }

    /// Clears every shard (sequence numbers restart at 0).
    pub fn clear(&self) {
        for s in self.shards.iter() {
            let mut guard = s.inner.lock();
            guard.events.clear();
            guard.next_seq = 0;
        }
    }
}

impl Handler for ShardedLog {
    fn on_event(&self, event: Event) -> u64 {
        let mut shard = self.shard(event.rank).inner.lock();
        let seq = shard.next_seq;
        shard.next_seq += 1;
        shard.events.push((seq, event));
        self.cost_ns
    }
}

struct FdrShard {
    buf: BytesMut,
    written: u64,
}

/// Flight-data-recorder mode sharded by rank: each rank owns a
/// cache-padded ring of `capacity_records` encoded events, and the merge
/// decodes every ring and stable-sorts by rank (each rank oldest-first).
/// The retention guarantee becomes per rank — a chatty rank can no
/// longer evict a quiet rank's records, which also makes the merged
/// trace deterministic for deterministic per-rank streams.
///
/// Ranks beyond the shard count fold onto shared rings; ordering stays
/// rank-major, but *which* records the shared ring retains then depends
/// on how the folded ranks interleaved — size the recorder to the
/// world's rank count to keep retention deterministic.
pub struct ShardedFdr {
    shards: Box<[Shard<FdrShard>]>,
    capacity_records: usize,
}

impl ShardedFdr {
    /// Creates a recorder with one ring of `capacity_records` events per
    /// rank.
    pub fn new(ranks: u32, capacity_records: usize) -> Self {
        assert!(capacity_records > 0, "FDR buffer needs capacity");
        let n = ranks.max(1) as usize;
        Self {
            shards: (0..n)
                .map(|_| {
                    Shard::new(FdrShard {
                        buf: BytesMut::with_capacity(capacity_records * RECORD_BYTES),
                        written: 0,
                    })
                })
                .collect(),
            capacity_records,
        }
    }

    #[inline]
    fn shard(&self, rank: u32) -> &Shard<FdrShard> {
        &self.shards[rank as usize % self.shards.len()]
    }

    /// Decodes the retained events: rank order, oldest first per rank
    /// (stable sort, a no-op scan when every rank owns its ring).
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let guard = shard.inner.lock();
            decode_records(&guard.buf, &mut out);
        }
        out.sort_by_key(|e| e.rank);
        out
    }

    /// Total events written across all shards (≥ retained).
    pub fn total_written(&self) -> u64 {
        self.shards.iter().map(|s| s.inner.lock().written).sum()
    }

    /// Events currently retained across all shards.
    pub fn retained(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.inner.lock().buf.len() / RECORD_BYTES)
            .sum()
    }
}

impl Handler for ShardedFdr {
    fn on_event(&self, event: Event) -> u64 {
        let mut shard = self.shard(event.rank).inner.lock();
        if shard.buf.len() >= self.capacity_records * RECORD_BYTES {
            shard.buf.advance(RECORD_BYTES);
        }
        encode_record(&mut shard.buf, &event);
        shard.written += 1;
        15 // same fixed-size encode as the single-ring FDR
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(fid: u32, kind: EventKind, tsc: u64) -> Event {
        rev(3, fid, kind, tsc)
    }

    fn rev(rank: u32, fid: u32, kind: EventKind, tsc: u64) -> Event {
        Event {
            id: PackedId::pack(1, fid).unwrap(),
            kind,
            tsc,
            rank,
        }
    }

    #[test]
    fn basic_log_records_in_order() {
        let log = BasicLog::new();
        log.on_event(ev(1, EventKind::Entry, 10));
        log.on_event(ev(1, EventKind::Exit, 20));
        let evs = log.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].tsc, 10);
        assert_eq!(evs[1].kind, EventKind::Exit);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn basic_log_with_events_avoids_cloning_and_sees_pushes() {
        let log = BasicLog::new();
        log.on_event(ev(1, EventKind::Entry, 10));
        // A snapshot taken while another is alive stays consistent.
        let total = log.with_events(|evs| {
            assert_eq!(evs.len(), 1);
            evs.iter().map(|e| e.tsc).sum::<u64>()
        });
        assert_eq!(total, 10);
        // Pushing after a snapshot was handed out must not disturb it.
        let snapshot = log.events();
        log.on_event(ev(1, EventKind::Exit, 20));
        assert_eq!(snapshot.len(), 1);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn fdr_round_trips_encoding() {
        let fdr = FdrBuffer::new(8);
        fdr.on_event(ev(42, EventKind::Entry, 123));
        fdr.on_event(ev(42, EventKind::TailExit, 456));
        let evs = fdr.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].id.function(), 42);
        assert_eq!(evs[0].id.object(), 1);
        assert_eq!(evs[0].rank, 3);
        assert_eq!(evs[1].kind, EventKind::TailExit);
        assert_eq!(evs[1].tsc, 456);
    }

    #[test]
    fn fdr_overwrites_oldest_when_full() {
        let fdr = FdrBuffer::new(3);
        for i in 0..10u64 {
            fdr.on_event(ev(i as u32, EventKind::Entry, i));
        }
        assert_eq!(fdr.retained(), 3);
        assert_eq!(fdr.total_written(), 10);
        let evs = fdr.events();
        let tscs: Vec<u64> = evs.iter().map(|e| e.tsc).collect();
        assert_eq!(tscs, vec![7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn fdr_zero_capacity_panics() {
        let _ = FdrBuffer::new(0);
    }

    #[test]
    fn sharded_log_merges_rank_major_regardless_of_arrival_order() {
        let log = ShardedLog::new(3);
        // Interleave ranks out of order on purpose.
        log.on_event(rev(2, 9, EventKind::Entry, 1));
        log.on_event(rev(0, 7, EventKind::Entry, 2));
        log.on_event(rev(1, 8, EventKind::Entry, 3));
        log.on_event(rev(0, 7, EventKind::Exit, 4));
        log.on_event(rev(2, 9, EventKind::Exit, 5));
        let merged = log.events();
        let order: Vec<(u32, u64)> = merged.iter().map(|e| (e.rank, e.tsc)).collect();
        assert_eq!(order, vec![(0, 2), (0, 4), (1, 3), (2, 1), (2, 5)]);
        assert_eq!(log.len(), 5);
        assert_eq!(log.rank_events(0).len(), 2);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn sharded_log_folds_out_of_range_ranks_deterministically() {
        let log = ShardedLog::new(2);
        // Ranks 1 and 3 fold onto shard 1; the merge must still come
        // out rank-major with each rank's own order preserved, and
        // rank_events must not leak the co-owner's events.
        log.on_event(rev(3, 9, EventKind::Entry, 1));
        log.on_event(rev(1, 7, EventKind::Entry, 2));
        log.on_event(rev(3, 9, EventKind::Exit, 3));
        log.on_event(rev(1, 7, EventKind::Exit, 4));
        assert_eq!(log.shards(), 2);
        let order: Vec<(u32, u64)> = log.events().iter().map(|e| (e.rank, e.tsc)).collect();
        assert_eq!(order, vec![(1, 2), (1, 4), (3, 1), (3, 3)]);
        assert_eq!(log.rank_events(5).len(), 0); // shard 1, but no rank-5 events
        let r3: Vec<u64> = log.rank_events(3).iter().map(|e| e.tsc).collect();
        assert_eq!(r3, vec![1, 3]);
    }

    #[test]
    fn sharded_fdr_retains_per_rank_and_merges_deterministically() {
        let fdr = ShardedFdr::new(2, 2);
        // Rank 0 is chatty, rank 1 writes once: rank 1's record survives.
        for i in 0..5u64 {
            fdr.on_event(rev(0, 1, EventKind::Entry, i));
        }
        fdr.on_event(rev(1, 2, EventKind::Entry, 100));
        assert_eq!(fdr.total_written(), 6);
        assert_eq!(fdr.retained(), 3); // 2 from rank 0's ring + 1 from rank 1
        let evs = fdr.events();
        let order: Vec<(u32, u64)> = evs.iter().map(|e| (e.rank, e.tsc)).collect();
        assert_eq!(order, vec![(0, 3), (0, 4), (1, 100)]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn sharded_fdr_zero_capacity_panics() {
        let _ = ShardedFdr::new(2, 0);
    }
}
