//! Trampolines and their addressing modes.
//!
//! A patched sled jumps to a trampoline that saves registers and calls
//! the registered event handler. The original XRay trampolines load the
//! handler pointer with an absolute RIP-relative `movq
//! _ZN6__xray19XRayPatchedFunctionE(%rip), %rax` — valid only when the
//! containing object runs at its link-time base. Shared objects are
//! relocated, so the paper's xray-dso library switches the load to go
//! through the global offset table (`@GOTPCREL`) (§V-B2).
//!
//! This module models that constraint: dispatch through an
//! [`AddressingMode::Absolute`] trampoline inside a relocated object is a
//! fault, exactly the crash a mis-linked trampoline would produce.

use std::fmt;

/// How the trampoline locates the event-handler pointer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AddressingMode {
    /// Direct RIP-relative load of `__xray::XRayPatchedFunction`. Only
    /// valid for the main executable (loaded at its preferred base).
    Absolute,
    /// Load via the global offset table (`-fPIC` style); valid anywhere.
    GotRelative,
}

/// Fault raised when an invalid trampoline configuration is exercised.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrampolineFault {
    /// The addressing mode that faulted.
    pub mode: AddressingMode,
}

impl fmt::Display for TrampolineFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trampoline with {:?} addressing dispatched from a relocated object",
            self.mode
        )
    }
}

impl std::error::Error for TrampolineFault {}

/// The per-object trampoline set registered alongside the sled table.
/// (Entry/exit/tail-exit trampolines share the addressing mode, so one
/// mode models the set.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrampolineSet {
    /// Handler addressing mode.
    pub mode: AddressingMode,
}

impl TrampolineSet {
    /// The original statically-linked trampolines.
    pub fn absolute() -> Self {
        Self {
            mode: AddressingMode::Absolute,
        }
    }

    /// The position-independent trampolines linked by `xray-dso`.
    pub fn pic() -> Self {
        Self {
            mode: AddressingMode::GotRelative,
        }
    }

    /// Checks that dispatching through these trampolines is sound for an
    /// object loaded `relocated` (away from its preferred base).
    pub fn check_dispatch(&self, relocated: bool) -> Result<(), TrampolineFault> {
        match (self.mode, relocated) {
            (AddressingMode::Absolute, true) => Err(TrampolineFault { mode: self.mode }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_ok_at_preferred_base() {
        assert!(TrampolineSet::absolute().check_dispatch(false).is_ok());
    }

    #[test]
    fn absolute_faults_when_relocated() {
        let err = TrampolineSet::absolute().check_dispatch(true).unwrap_err();
        assert_eq!(err.mode, AddressingMode::Absolute);
        assert!(err.to_string().contains("relocated"));
    }

    #[test]
    fn pic_valid_everywhere() {
        assert!(TrampolineSet::pic().check_dispatch(false).is_ok());
        assert!(TrampolineSet::pic().check_dispatch(true).is_ok());
    }
}
