//! Event handler interface (the `XRayPatchedFunction` pointer).
//!
//! When a patched sled executes, the trampoline invokes the globally
//! registered handler with the packed function ID and the event type
//! (paper §V-A). Measurement adapters (DynCaPI's Score-P/TALP bridges,
//! XRay's own logging modes) implement [`Handler`].

use crate::packed_id::PackedId;

/// The instrumentation event type delivered to handlers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Function entry.
    Entry,
    /// Function exit.
    Exit,
    /// Tail-call exit.
    TailExit,
}

/// One instrumentation event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Packed object/function ID.
    pub id: PackedId,
    /// Entry or exit.
    pub kind: EventKind,
    /// Virtual timestamp counter (ns) of the executing rank.
    pub tsc: u64,
    /// Simulated MPI rank on which the event fired.
    pub rank: u32,
}

/// The event-handler trait. Handlers are invoked from every rank thread
/// concurrently and must be `Send + Sync`.
///
/// `on_event` returns the *virtual cost* of handling the event in
/// nanoseconds; the executor charges it to the calling rank. Returning
/// the cost (rather than exposing a static constant) lets measurement
/// tools model state-dependent costs — e.g. Score-P pays extra when an
/// event creates a new call-path node, which is exactly what makes full
/// instrumentation explode in Table II.
pub trait Handler: Send + Sync {
    /// Handles one instrumentation event, returning its virtual cost in
    /// nanoseconds.
    fn on_event(&self, event: Event) -> u64;
}

/// A handler that discards events at zero cost (pure sled/trampoline
/// overhead measurements).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullHandler;

impl Handler for NullHandler {
    fn on_event(&self, _event: Event) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_handler_is_free() {
        let h = NullHandler;
        let ev = Event {
            id: PackedId::pack(0, 1).unwrap(),
            kind: EventKind::Entry,
            tsc: 0,
            rank: 0,
        };
        assert_eq!(h.on_event(ev), 0);
    }
}
