//! # capi-xray — LLVM XRay reproduction with DSO support
//!
//! Reproduces the instrumentation machinery of paper §V:
//!
//! * [`pass`] — the compile-time machine pass: pre-filters functions by
//!   instruction count (and loop presence), then records entry/exit
//!   *sleds* (NOP placeholders) in a per-object sled table.
//! * [`packed_id`] — the paper's Fig. 4 contribution: a 32-bit packed ID
//!   with 8 bits of object ID and 24 bits of function ID. Object 0 is
//!   always the main executable, keeping packed IDs backward-compatible
//!   with pre-DSO XRay.
//! * [`trampoline`] — trampolines with absolute or GOT-relative handler
//!   addressing. Relocated shared objects *must* use the GOT-relative
//!   form (§V-B2); dispatch through an absolute trampoline in a
//!   relocated object faults, exactly like the unpatched original would.
//! * [`runtime`] — the `xray-rt` + `xray-dso` equivalent: object
//!   registration/deregistration, sled patching through `mprotect`-style
//!   page flips, the global patched-function handler, and the
//!   `function_address`/ID lookup API the paper's DynCaPI cross-checks.
//! * [`dispatch`] — the wait-free per-event fast path: an immutable
//!   dispatch table published copy-on-write per object, RCU-style,
//!   behind one atomic pointer, with dynamically claimed cache-padded
//!   per-thread reader slots for the in-flight guards and counters (the
//!   full publish/quiescence protocol is documented on the module).
//! * [`log`] — XRay's built-in modes: a basic in-memory trace and a
//!   flight-data-recorder-style ring buffer, plus their per-rank
//!   sharded variants with deterministic `(rank, seq)` merges.

pub mod dispatch;
pub mod handler;
pub mod log;
pub mod packed_id;
pub mod pass;
pub mod runtime;
pub mod sled;
pub(crate) mod slots;
pub mod trampoline;

pub use dispatch::{DispatchTable, ObjectDispatch};
pub use handler::{Event, EventKind, Handler};
pub use log::{BasicLog, FdrBuffer, ShardedFdr, ShardedLog};
pub use packed_id::{IdError, PackedId, FUNC_BITS, MAX_FUNCTION_ID, MAX_OBJECT_ID, OBJ_BITS};
pub use pass::{instrument_object, InstrumentedObject, PassOptions, PassStats};
pub use runtime::{
    ObjectPatchSummary, ObjectSnapshot, PatchDelta, PatchSnapshot, RepatchReport, RuntimeStats,
    XRayError, XRayRuntime,
};
pub use sled::{SledEntry, SledKind, SledTable, SLED_BYTES};
pub use trampoline::{AddressingMode, TrampolineFault, TrampolineSet};
