//! The wait-free dispatch fast path.
//!
//! Every rank thread executes [`crate::runtime::XRayRuntime::dispatch`]
//! on its hottest loop, so the per-event path must not take a lock or
//! touch a shared cache line. Instead of a read-locked walk over the
//! registered objects, the runtime publishes an immutable
//! [`DispatchTable`] — flat per-object arrays of patch state, unpatch
//! generations, the precomputed trampoline fault-check result, and the
//! handler pointer — behind a single atomic pointer. Dispatch then is:
//!
//! 1. bump the thread's in-flight guard (a lazily claimed, cache-padded
//!    `ReaderSlot`),
//! 2. one atomic load of the current table,
//! 3. two array indexes (`patched[fid]`, and `unpatch_gen[fid]` only on
//!    the stale-tolerance path),
//! 4. call the handler through the table's own `Arc`.
//!
//! Publication (RCU-style) happens only on the cold path —
//! register/deregister, `set_handler`, and the patching family — while
//! the runtime's existing write lock is held, which serializes
//! publishers. The table is **copy-on-write per object**: a publisher
//! rebuilds only the [`ObjectDispatch`] entries its mutation touched and
//! shares every other entry with the superseded table as an `Arc`, so
//! repatch/`set_rate`/DSO churn cost O(touched objects), independent of
//! how many objects are loaded. A publisher swaps the pointer and then
//! waits for every registered reader slot's in-flight count to drain to
//! zero before dropping the superseded table, so readers never observe
//! a freed table. Readers are wait-free (two uncontended atomic RMWs on
//! their own slot plus one atomic load); publishers block briefly,
//! which is the right trade for a path that runs once per epoch rather
//! than once per event.
//!
//! The same slots carry the `dispatches`/`stale_dispatches` counters,
//! killing the cache-line ping-pong the old global `AtomicU64` pair
//! paid on every event. Slots are claimed per thread/rank on demand and
//! recycled on thread exit — see the `slots` module for the registry
//! and the quiescence argument under dynamic claims.

use crate::handler::Handler;
use crate::slots::{ReaderSlot, SlotRegistry};
use crate::trampoline::TrampolineFault;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

/// Immutable per-object slice of a [`DispatchTable`].
pub struct ObjectDispatch {
    /// XRay object ID (== index in [`DispatchTable::objects`]).
    pub object_id: u8,
    /// Index in the loader's object list.
    pub process_index: usize,
    /// Patch state by XRay function ID.
    pub patched: Box<[bool]>,
    /// Generation at which each function was last unpatched (0 = never).
    pub unpatch_gen: Box<[u64]>,
    /// Precomputed trampoline soundness check for this object: `Some`
    /// means every dispatch through it faults (e.g. absolute trampolines
    /// in a relocated DSO).
    pub fault: Option<TrampolineFault>,
    /// Object function index → XRay function ID.
    pub fid_by_func: Box<[Option<u32>]>,
    /// Per-function sampling rate (1-in-N) by XRay function ID. Rate 1
    /// is full instrumentation; the sampled fast path delivers only
    /// every N-th event per rank and counts the rest as skips.
    pub rate: Box<[u32]>,
}

/// An immutable snapshot of everything the per-event path needs,
/// published atomically by the cold-path mutators.
///
/// Object entries are individually `Arc`ed so a publisher can share the
/// untouched ones with the superseded table (copy-on-write): two
/// consecutive tables typically differ in one entry and alias the rest.
pub struct DispatchTable {
    /// Patch generation this table describes.
    pub generation: u64,
    /// Indexed by XRay object ID. Entries untouched by the publishing
    /// mutation are shared (`Arc::ptr_eq`) with the previous table.
    pub objects: Vec<Option<Arc<ObjectDispatch>>>,
    /// The registered event handler, if any. Kept inside the table so
    /// dispatch never clones an `Arc` — the table's own lifetime pins
    /// the handler.
    pub handler: Option<Arc<dyn Handler>>,
}

impl DispatchTable {
    /// The empty table an empty runtime starts from.
    pub(crate) fn empty() -> Self {
        Self {
            generation: 0,
            objects: Vec::new(),
            handler: None,
        }
    }

    /// The entry for `object_id`, if registered.
    #[inline]
    pub fn object(&self, object_id: u8) -> Option<&ObjectDispatch> {
        self.objects
            .get(object_id as usize)
            .and_then(|o| o.as_deref())
    }
}

/// The atomically swapped table slot.
///
/// Invariant: `ptr` always holds a pointer produced by
/// `Arc::into_raw` whose strong count this cell logically owns; it is
/// reclaimed either by [`TableCell::publish`] (after quiescence) or by
/// `Drop`.
pub(crate) struct TableCell {
    ptr: AtomicPtr<DispatchTable>,
}

// Debug-build reentrancy sentinel: depth of `DispatchGuard`s alive on
// the current thread. Publishing from inside a guard (e.g. a handler's
// `on_event` calling `set_handler` or a patching API) would make the
// publisher wait on its own slot forever; even a *read*-lock runtime
// API called from a handler can deadlock against a publisher that
// holds the write lock while waiting for the handler's slot to
// drain. In debug builds we turn both silent livelocks into a panic.
#[cfg(debug_assertions)]
thread_local! {
    static GUARD_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Debug-build check that the current thread is not inside a dispatch
/// guard — called before every acquisition of the runtime's inner lock
/// (read or write). A handler reaching such an API from `on_event` can
/// deadlock against a publisher's quiescence wait; this converts the
/// hang into a diagnosable panic. No-op in release builds.
#[inline]
pub(crate) fn debug_assert_not_dispatching(api: &str) {
    #[cfg(debug_assertions)]
    GUARD_DEPTH.with(|d| {
        assert_eq!(
            d.get(),
            0,
            "`{api}` called from inside a dispatch (e.g. from a handler's \
             on_event): this can deadlock against a concurrent \
             DispatchTable publisher waiting for in-flight dispatches \
             to drain"
        );
    });
    #[cfg(not(debug_assertions))]
    let _ = api;
}

impl TableCell {
    pub(crate) fn new(table: Arc<DispatchTable>) -> Self {
        Self {
            ptr: AtomicPtr::new(Arc::into_raw(table).cast_mut()),
        }
    }

    /// Publishes `new` and reclaims the superseded table once every
    /// in-flight dispatch has drained. Returns the measured wall-clock
    /// duration of the quiescence wait in nanoseconds (telemetry only —
    /// nothing deterministic may depend on it).
    ///
    /// Must only be called while the runtime's write lock is held:
    /// that serializes publishers, so exactly one thread ever waits on
    /// the reader slots at a time.
    pub(crate) fn publish(&self, new: Arc<DispatchTable>, slots: &SlotRegistry) -> u64 {
        debug_assert_not_dispatching("DispatchTable publish");
        let old = self
            .ptr
            .swap(Arc::into_raw(new).cast_mut(), Ordering::SeqCst);
        let wait_start = std::time::Instant::now();
        // Quiescence: any reader that loaded `old` incremented its
        // slot *before* loading the pointer (both SeqCst), so once a
        // slot reads zero after our SeqCst swap, no reader on that
        // slot still holds `old`. Readers arriving after the swap see
        // the new table and are unaffected.
        //
        // The wait set is snapshotted *after* the swap: slot claims are
        // serialized through the registry's list mutex, so a slot
        // claimed after this snapshot belongs to a reader that can only
        // observe the new table — skipping it is sound.
        //
        // Progress bound: each thread/rank owns its own slot (until the
        // `CAPI_READER_SLOTS_MAX` overflow fallback kicks in), so a
        // slot's count returns to zero between every pair of events and
        // the wait is bounded by one dispatch duration per slot.
        for s in slots.quiescence_set() {
            let mut spins = 0u32;
            while s.in_flight.load(Ordering::SeqCst) != 0 {
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        let quiescence_ns = wait_start.elapsed().as_nanos() as u64;
        // SAFETY: `old` came from `Arc::into_raw` (cell invariant) and
        // the quiescence wait above proves no reader still borrows it.
        drop(unsafe { Arc::from_raw(old.cast_const()) });
        quiescence_ns
    }
}

impl Drop for TableCell {
    fn drop(&mut self) {
        let p = *self.ptr.get_mut();
        // SAFETY: the cell owns the strong count behind `p` (invariant);
        // `&mut self` proves no guard can be alive.
        drop(unsafe { Arc::from_raw(p.cast_const()) });
    }
}

/// RAII guard pinning the current table for one dispatch.
///
/// While the guard lives, the publisher's quiescence wait cannot
/// complete, so the `&DispatchTable` it hands out stays valid.
pub(crate) struct DispatchGuard<'a> {
    slot: &'a ReaderSlot,
    table: &'a DispatchTable,
}

impl<'a> DispatchGuard<'a> {
    /// Enters the fast path: bumps the slot's in-flight count, then
    /// loads the current table.
    #[inline]
    pub(crate) fn enter(cell: &'a TableCell, slot: &'a ReaderSlot) -> Self {
        #[cfg(debug_assertions)]
        GUARD_DEPTH.with(|d| d.set(d.get() + 1));
        slot.in_flight.fetch_add(1, Ordering::SeqCst);
        let p = cell.ptr.load(Ordering::SeqCst);
        // SAFETY: the increment above is ordered before this load
        // (SeqCst), so a publisher swapping afterwards waits for this
        // guard before freeing the table behind `p`.
        let table = unsafe { &*p };
        Self { slot, table }
    }

    /// The pinned table; the borrow cannot outlive the guard.
    #[inline]
    pub(crate) fn table(&self) -> &DispatchTable {
        self.table
    }
}

impl Drop for DispatchGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        self.slot.in_flight.fetch_sub(1, Ordering::Release);
        #[cfg(debug_assertions)]
        GUARD_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::NullHandler;
    use std::sync::atomic::{AtomicBool, AtomicU64};

    fn table_with_gen(generation: u64) -> Arc<DispatchTable> {
        Arc::new(DispatchTable {
            generation,
            objects: Vec::new(),
            handler: Some(Arc::new(NullHandler)),
        })
    }

    #[test]
    fn publish_swaps_and_reclaims() {
        let slots = SlotRegistry::with_max(8);
        let cell = TableCell::new(table_with_gen(0));
        {
            let g = DispatchGuard::enter(&cell, slots.slot_for(0));
            assert_eq!(g.table().generation, 0);
        }
        cell.publish(table_with_gen(1), &slots);
        let g = DispatchGuard::enter(&cell, slots.slot_for(3));
        assert_eq!(g.table().generation, 1);
    }

    /// Readers hammering the table while a publisher swaps it over and
    /// over: every read sees a coherent table (monotone generations,
    /// handler present), and nothing crashes or leaks under the
    /// quiescence protocol. The publisher keeps publishing until every
    /// reader has observably overlapped with the swapping. Readers use
    /// dynamically claimed slots — more readers than `max` exercises
    /// the shared-overflow fallback too.
    #[test]
    fn concurrent_publish_and_read_stress() {
        const READERS: usize = 4;
        let slots = SlotRegistry::with_max(3);
        let cell = TableCell::new(table_with_gen(0));
        let stop = AtomicBool::new(false);
        let reads: Vec<AtomicU64> = (0..READERS).map(|_| AtomicU64::new(0)).collect();
        let mut published = 0u64;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..READERS {
                let cell = &cell;
                let slots = &slots;
                let stop = &stop;
                let reads = &reads;
                handles.push(scope.spawn(move || {
                    let slot = slots.slot_for(t as u32);
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let g = DispatchGuard::enter(cell, slot);
                        let tab = g.table();
                        assert!(tab.generation >= last, "generations monotone per reader");
                        assert!(tab.handler.is_some());
                        last = tab.generation;
                        reads[t].fetch_add(1, Ordering::Relaxed);
                    }
                }));
            }
            // ≥ 1,000 publishes, and keep going until every reader has
            // performed reads while publishes were happening.
            while published < 1_000 || reads.iter().any(|r| r.load(Ordering::Relaxed) < 100) {
                published += 1;
                cell.publish(table_with_gen(published), &slots);
            }
            stop.store(true, Ordering::Relaxed);
            for h in handles {
                h.join().unwrap();
            }
        });
        let g = DispatchGuard::enter(&cell, slots.control());
        assert_eq!(g.table().generation, published);
    }
}
