//! The wait-free dispatch fast path.
//!
//! Every rank thread executes [`crate::runtime::XRayRuntime::dispatch`]
//! on its hottest loop, so the per-event path must not take a lock or
//! touch a shared cache line. Instead of a read-locked walk over the
//! registered objects, the runtime publishes an immutable
//! [`DispatchTable`] — flat per-object arrays of patch state, unpatch
//! generations, the precomputed trampoline fault-check result, and the
//! handler pointer — behind a single atomic pointer. Dispatch then is:
//!
//! 1. bump a per-rank in-flight guard (striped, cache-padded),
//! 2. one atomic load of the current table,
//! 3. two array indexes (`patched[fid]`, and `unpatch_gen[fid]` only on
//!    the stale-tolerance path),
//! 4. call the handler through the table's own `Arc`.
//!
//! Publication (RCU-style) happens only on the cold path —
//! register/deregister, `set_handler`, and the patching family — while
//! the runtime's existing write lock is held, which serializes
//! publishers. A publisher swaps the pointer and then waits for every
//! stripe's in-flight count to drain to zero before dropping the
//! superseded table, so readers never observe a freed table. Readers are
//! wait-free (two uncontended atomic RMWs on their own stripe plus one
//! atomic load); publishers block briefly, which is the right trade for
//! a path that runs once per epoch rather than once per event.
//!
//! The same stripes carry the `dispatches`/`stale_dispatches` counters,
//! killing the cache-line ping-pong the old global `AtomicU64` pair
//! paid on every event.

use crate::handler::Handler;
use crate::trampoline::TrampolineFault;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of counter/guard stripes. Ranks map onto stripes by
/// `rank & (STRIPES - 1)`; with up to 64 ranks every rank owns its own
/// cache line.
pub(crate) const STRIPES: usize = 64;

/// One cache-padded stripe: the in-flight dispatch guard plus the
/// event counters for the ranks mapped to it.
#[repr(align(64))]
#[derive(Default)]
pub(crate) struct Stripe {
    /// Dispatches currently inside the fast path on this stripe. A
    /// publisher may not free a superseded table until every stripe
    /// reads zero at least once after the pointer swap.
    pub in_flight: AtomicU64,
    /// Events dispatched to the handler.
    pub dispatches: AtomicU64,
    /// Dispatches tolerated through the stale-snapshot path.
    pub stale_dispatches: AtomicU64,
    /// Sampled-mode dispatches skipped by the 1-in-N counter (the sled
    /// fired but the event was not delivered to the handler).
    pub sampled_skips: AtomicU64,
}

/// Index of the extra stripe reserved for control-plane readers
/// (`is_patched`, `snapshot`): giving them their own slot keeps a
/// polling control thread from overlapping rank 0's dispatch windows
/// and starving a publisher's quiescence wait.
pub(crate) const CONTROL_STRIPE: usize = STRIPES;

/// Builds the stripe array — one per rank slot plus the control-plane
/// stripe (boxed: 65 cache lines do not belong on the stack of every
/// embedder).
pub(crate) fn new_stripes() -> Box<[Stripe]> {
    (0..=STRIPES).map(|_| Stripe::default()).collect()
}

/// Immutable per-object slice of a [`DispatchTable`].
pub struct ObjectDispatch {
    /// XRay object ID (== index in [`DispatchTable::objects`]).
    pub object_id: u8,
    /// Index in the loader's object list.
    pub process_index: usize,
    /// Patch state by XRay function ID.
    pub patched: Box<[bool]>,
    /// Generation at which each function was last unpatched (0 = never).
    pub unpatch_gen: Box<[u64]>,
    /// Precomputed trampoline soundness check for this object: `Some`
    /// means every dispatch through it faults (e.g. absolute trampolines
    /// in a relocated DSO).
    pub fault: Option<TrampolineFault>,
    /// Object function index → XRay function ID.
    pub fid_by_func: Box<[Option<u32>]>,
    /// Per-function sampling rate (1-in-N) by XRay function ID. Rate 1
    /// is full instrumentation; the sampled fast path delivers only
    /// every N-th event per rank and counts the rest as skips.
    pub rate: Box<[u32]>,
}

/// An immutable snapshot of everything the per-event path needs,
/// published atomically by the cold-path mutators.
pub struct DispatchTable {
    /// Patch generation this table describes.
    pub generation: u64,
    /// Indexed by XRay object ID.
    pub objects: Vec<Option<ObjectDispatch>>,
    /// The registered event handler, if any. Kept inside the table so
    /// dispatch never clones an `Arc` — the table's own lifetime pins
    /// the handler.
    pub handler: Option<Arc<dyn Handler>>,
}

impl DispatchTable {
    /// The empty table an empty runtime starts from.
    pub(crate) fn empty() -> Self {
        Self {
            generation: 0,
            objects: Vec::new(),
            handler: None,
        }
    }
}

/// The atomically swapped table slot.
///
/// Invariant: `ptr` always holds a pointer produced by
/// `Arc::into_raw` whose strong count this cell logically owns; it is
/// reclaimed either by [`TableCell::publish`] (after quiescence) or by
/// `Drop`.
pub(crate) struct TableCell {
    ptr: AtomicPtr<DispatchTable>,
}

// Debug-build reentrancy sentinel: depth of `DispatchGuard`s alive on
// the current thread. Publishing from inside a guard (e.g. a handler's
// `on_event` calling `set_handler` or a patching API) would make the
// publisher wait on its own stripe forever; even a *read*-lock runtime
// API called from a handler can deadlock against a publisher that
// holds the write lock while waiting for the handler's stripe to
// drain. In debug builds we turn both silent livelocks into a panic.
#[cfg(debug_assertions)]
thread_local! {
    static GUARD_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Debug-build check that the current thread is not inside a dispatch
/// guard — called before every acquisition of the runtime's inner lock
/// (read or write). A handler reaching such an API from `on_event` can
/// deadlock against a publisher's quiescence wait; this converts the
/// hang into a diagnosable panic. No-op in release builds.
#[inline]
pub(crate) fn debug_assert_not_dispatching(api: &str) {
    #[cfg(debug_assertions)]
    GUARD_DEPTH.with(|d| {
        assert_eq!(
            d.get(),
            0,
            "`{api}` called from inside a dispatch (e.g. from a handler's \
             on_event): this can deadlock against a concurrent \
             DispatchTable publisher waiting for in-flight dispatches \
             to drain"
        );
    });
    #[cfg(not(debug_assertions))]
    let _ = api;
}

impl TableCell {
    pub(crate) fn new(table: Arc<DispatchTable>) -> Self {
        Self {
            ptr: AtomicPtr::new(Arc::into_raw(table).cast_mut()),
        }
    }

    /// Publishes `new` and reclaims the superseded table once every
    /// in-flight dispatch has drained. Returns the measured wall-clock
    /// duration of the quiescence wait in nanoseconds (telemetry only —
    /// nothing deterministic may depend on it).
    ///
    /// Must only be called while the runtime's write lock is held:
    /// that serializes publishers, so exactly one thread ever waits on
    /// the stripes at a time.
    pub(crate) fn publish(&self, new: Arc<DispatchTable>, stripes: &[Stripe]) -> u64 {
        debug_assert_not_dispatching("DispatchTable publish");
        let old = self
            .ptr
            .swap(Arc::into_raw(new).cast_mut(), Ordering::SeqCst);
        let wait_start = std::time::Instant::now();
        // Quiescence: any reader that loaded `old` incremented its
        // stripe *before* loading the pointer (both SeqCst), so once a
        // stripe reads zero after our SeqCst swap, no reader on that
        // stripe still holds `old`. Readers arriving after the swap see
        // the new table and are unaffected.
        //
        // Progress bound: with one rank per stripe (ranks ≤ STRIPES,
        // the supported fast-path configuration) a stripe drains within
        // one dispatch duration — a rank's count returns to zero between
        // every pair of events. Ranks beyond STRIPES fold onto shared
        // stripes; correctness is unaffected, but a publisher may then
        // have to out-wait continuously overlapping dispatches from the
        // stripe's co-owners (see ROADMAP: per-thread reader slots).
        for s in stripes {
            let mut spins = 0u32;
            while s.in_flight.load(Ordering::SeqCst) != 0 {
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        let quiescence_ns = wait_start.elapsed().as_nanos() as u64;
        // SAFETY: `old` came from `Arc::into_raw` (cell invariant) and
        // the quiescence wait above proves no reader still borrows it.
        drop(unsafe { Arc::from_raw(old.cast_const()) });
        quiescence_ns
    }
}

impl Drop for TableCell {
    fn drop(&mut self) {
        let p = *self.ptr.get_mut();
        // SAFETY: the cell owns the strong count behind `p` (invariant);
        // `&mut self` proves no guard can be alive.
        drop(unsafe { Arc::from_raw(p.cast_const()) });
    }
}

/// RAII guard pinning the current table for one dispatch.
///
/// While the guard lives, the publisher's quiescence wait cannot
/// complete, so the `&DispatchTable` it hands out stays valid.
pub(crate) struct DispatchGuard<'a> {
    stripe: &'a Stripe,
    table: &'a DispatchTable,
}

impl<'a> DispatchGuard<'a> {
    /// Enters the fast path: bumps the stripe's in-flight count, then
    /// loads the current table.
    #[inline]
    pub(crate) fn enter(cell: &'a TableCell, stripe: &'a Stripe) -> Self {
        #[cfg(debug_assertions)]
        GUARD_DEPTH.with(|d| d.set(d.get() + 1));
        stripe.in_flight.fetch_add(1, Ordering::SeqCst);
        let p = cell.ptr.load(Ordering::SeqCst);
        // SAFETY: the increment above is ordered before this load
        // (SeqCst), so a publisher swapping afterwards waits for this
        // guard before freeing the table behind `p`.
        let table = unsafe { &*p };
        Self { stripe, table }
    }

    /// The pinned table; the borrow cannot outlive the guard.
    #[inline]
    pub(crate) fn table(&self) -> &DispatchTable {
        self.table
    }
}

impl Drop for DispatchGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        self.stripe.in_flight.fetch_sub(1, Ordering::Release);
        #[cfg(debug_assertions)]
        GUARD_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::NullHandler;
    use std::sync::atomic::AtomicBool;

    fn table_with_gen(generation: u64) -> Arc<DispatchTable> {
        Arc::new(DispatchTable {
            generation,
            objects: Vec::new(),
            handler: Some(Arc::new(NullHandler)),
        })
    }

    #[test]
    fn publish_swaps_and_reclaims() {
        let stripes = new_stripes();
        let cell = TableCell::new(table_with_gen(0));
        {
            let g = DispatchGuard::enter(&cell, &stripes[0]);
            assert_eq!(g.table().generation, 0);
        }
        cell.publish(table_with_gen(1), &stripes[..]);
        let g = DispatchGuard::enter(&cell, &stripes[3]);
        assert_eq!(g.table().generation, 1);
    }

    /// Readers hammering the table while a publisher swaps it over and
    /// over: every read sees a coherent table (monotone generations,
    /// handler present), and nothing crashes or leaks under the
    /// quiescence protocol. The publisher keeps publishing until every
    /// reader has observably overlapped with the swapping.
    #[test]
    fn concurrent_publish_and_read_stress() {
        const READERS: usize = 4;
        let stripes = new_stripes();
        let cell = TableCell::new(table_with_gen(0));
        let stop = AtomicBool::new(false);
        let reads: Vec<AtomicU64> = (0..READERS).map(|_| AtomicU64::new(0)).collect();
        let mut published = 0u64;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..READERS {
                let cell = &cell;
                let stripes = &stripes;
                let stop = &stop;
                let reads = &reads;
                handles.push(scope.spawn(move || {
                    let stripe = &stripes[t % STRIPES];
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let g = DispatchGuard::enter(cell, stripe);
                        let tab = g.table();
                        assert!(tab.generation >= last, "generations monotone per reader");
                        assert!(tab.handler.is_some());
                        last = tab.generation;
                        reads[t].fetch_add(1, Ordering::Relaxed);
                    }
                }));
            }
            // ≥ 1,000 publishes, and keep going until every reader has
            // performed reads while publishes were happening.
            while published < 1_000 || reads.iter().any(|r| r.load(Ordering::Relaxed) < 100) {
                published += 1;
                cell.publish(table_with_gen(published), &stripes[..]);
            }
            stop.store(true, Ordering::Relaxed);
            for h in handles {
                h.join().unwrap();
            }
        });
        let g = DispatchGuard::enter(&cell, &stripes[0]);
        assert_eq!(g.table().generation, published);
    }
}
