//! Packed object/function IDs (paper Fig. 4).
//!
//! XRay's original function IDs were unique only within the main
//! executable. To support DSOs, the 32-bit ID is split into an 8-bit
//! object ID and a 24-bit function ID:
//!
//! ```text
//!  31          24 23                               0
//! ┌──────────────┬──────────────────────────────────┐
//! │  Object ID   │           Function ID            │
//! │    8 bits    │             24 bits              │
//! └──────────────┴──────────────────────────────────┘
//! ```
//!
//! Object 0 is always the main executable, so its packed IDs are
//! numerically identical to the legacy unpacked IDs — the backwards-
//! compatibility property §V-B1 calls out. The paper notes the 24-bit
//! function space (≈16.7 M) comfortably covers practice: the largest
//! OpenFOAM object uses 28,687 IDs.

use std::fmt;

/// Bits reserved for the object ID.
pub const OBJ_BITS: u32 = 8;
/// Bits reserved for the function ID.
pub const FUNC_BITS: u32 = 24;
/// Largest valid object ID (255; object 0 is the executable, leaving 255
/// IDs for DSOs).
pub const MAX_OBJECT_ID: u8 = u8::MAX;
/// Largest valid function ID (2^24 − 1 ≈ 16.7 M).
pub const MAX_FUNCTION_ID: u32 = (1 << FUNC_BITS) - 1;

/// Errors constructing packed IDs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IdError {
    /// The function ID does not fit in 24 bits.
    FunctionIdOverflow {
        /// The offending function ID.
        fid: u32,
    },
}

impl fmt::Display for IdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdError::FunctionIdOverflow { fid } => {
                write!(
                    f,
                    "function ID {fid} exceeds 24-bit limit {MAX_FUNCTION_ID}"
                )
            }
        }
    }
}

impl std::error::Error for IdError {}

/// A packed `(object, function)` identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PackedId(u32);

impl PackedId {
    /// Packs `object` and `fid`.
    pub fn pack(object: u8, fid: u32) -> Result<Self, IdError> {
        if fid > MAX_FUNCTION_ID {
            return Err(IdError::FunctionIdOverflow { fid });
        }
        Ok(PackedId(((object as u32) << FUNC_BITS) | fid))
    }

    /// The object ID (high 8 bits).
    #[inline]
    pub fn object(self) -> u8 {
        (self.0 >> FUNC_BITS) as u8
    }

    /// The function ID (low 24 bits).
    #[inline]
    pub fn function(self) -> u32 {
        self.0 & MAX_FUNCTION_ID
    }

    /// Raw 32-bit representation (what crosses the trampoline ABI).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Reconstructs from the raw representation.
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        PackedId(raw)
    }

    /// Whether this ID belongs to the main executable (object 0) — i.e.
    /// is indistinguishable from a legacy non-DSO XRay ID.
    #[inline]
    pub fn is_main_executable(self) -> bool {
        self.object() == 0
    }
}

impl fmt::Debug for PackedId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PackedId(obj={}, fid={})",
            self.object(),
            self.function()
        )
    }
}

impl fmt::Display for PackedId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.object(), self.function())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pack_unpack_round_trip() {
        let id = PackedId::pack(7, 123_456).unwrap();
        assert_eq!(id.object(), 7);
        assert_eq!(id.function(), 123_456);
    }

    #[test]
    fn object_zero_ids_equal_legacy_ids() {
        // Backwards compatibility: packed ID of the main executable is
        // numerically the function ID.
        for fid in [0u32, 1, 28_687, MAX_FUNCTION_ID] {
            let id = PackedId::pack(0, fid).unwrap();
            assert_eq!(id.raw(), fid);
            assert!(id.is_main_executable());
        }
    }

    #[test]
    fn function_id_overflow_rejected() {
        assert_eq!(
            PackedId::pack(0, MAX_FUNCTION_ID + 1),
            Err(IdError::FunctionIdOverflow {
                fid: MAX_FUNCTION_ID + 1
            })
        );
    }

    #[test]
    fn max_values_pack() {
        let id = PackedId::pack(MAX_OBJECT_ID, MAX_FUNCTION_ID).unwrap();
        assert_eq!(id.object(), MAX_OBJECT_ID);
        assert_eq!(id.function(), MAX_FUNCTION_ID);
        assert_eq!(id.raw(), u32::MAX);
    }

    #[test]
    fn paper_reference_value_fits() {
        // "the largest object file in our OpenFOAM test case uses 28,687 IDs"
        const { assert!(28_687 < MAX_FUNCTION_ID) }
    }

    #[test]
    fn display_formats() {
        let id = PackedId::pack(3, 42).unwrap();
        assert_eq!(id.to_string(), "3:42");
        assert_eq!(format!("{id:?}"), "PackedId(obj=3, fid=42)");
    }

    proptest! {
        #[test]
        fn prop_round_trip(object in 0u8..=255, fid in 0u32..=MAX_FUNCTION_ID) {
            let id = PackedId::pack(object, fid).unwrap();
            prop_assert_eq!(id.object(), object);
            prop_assert_eq!(id.function(), fid);
            prop_assert_eq!(PackedId::from_raw(id.raw()), id);
        }

        #[test]
        fn prop_distinct_pairs_distinct_ids(
            a in 0u8..=255, fa in 0u32..=MAX_FUNCTION_ID,
            b in 0u8..=255, fb in 0u32..=MAX_FUNCTION_ID,
        ) {
            let ia = PackedId::pack(a, fa).unwrap();
            let ib = PackedId::pack(b, fb).unwrap();
            prop_assert_eq!(ia == ib, a == b && fa == fb);
        }

        #[test]
        fn prop_overflow_always_rejected(fid in (MAX_FUNCTION_ID + 1)..=u32::MAX) {
            prop_assert!(PackedId::pack(0, fid).is_err());
        }
    }
}
