//! Structured spans over the adaptation lifecycle, ordered by a
//! logical clock.
//!
//! Spans are strictly control-plane: the adaptive run's control thread
//! opens one per lifecycle phase (run, epoch, policy evaluation,
//! repatch, profile IO) and the RAII guard closes it. Each begin/end
//! advances the shared logical clock by one tick, which is what makes
//! the text exporter byte-deterministic — wall time never orders
//! anything.

use crate::recorder::{RecordKind, CONTROL_RANK};
use crate::registry::Telemetry;
use std::fmt::Display;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

/// One recorded span (or instant) in creation order.
pub(crate) struct SpanRecord {
    pub(crate) name: &'static str,
    /// Nesting depth at creation (number of open ancestors).
    pub(crate) depth: usize,
    /// Logical tick at which the span opened.
    pub(crate) start: u64,
    /// Logical tick at which the span closed (== `start` for instants
    /// and for spans still open at export time).
    pub(crate) end: u64,
    /// Deterministic key/value annotations, rendered by both exporters.
    pub(crate) args: Vec<(&'static str, String)>,
    /// Quarantined wall-clock duration: Chrome trace only.
    pub(crate) wall_ns: Option<u64>,
    pub(crate) instant: bool,
}

/// The span log plus the gauge-over-time track, behind one mutex
/// (control-plane only, never on the dispatch path).
#[derive(Default)]
pub(crate) struct SpanLog {
    pub(crate) records: Vec<SpanRecord>,
    /// Indices of currently-open spans, innermost last.
    pub(crate) stack: Vec<usize>,
    /// `(gauge index, logical tick, value)` — every `set()`, in order,
    /// so the Chrome trace can plot gauges as counter tracks.
    pub(crate) gauge_points: Vec<(usize, u64, u64)>,
}

/// RAII guard for an open span: closing happens on drop. Obtained from
/// [`Telemetry::span`]; inert (a no-op carrying no allocation) when the
/// telemetry instance was disabled at creation time.
pub struct SpanGuard {
    /// `None` when telemetry was disabled — every method is then a
    /// no-op and drop does nothing.
    state: Option<(Telemetry, usize)>,
}

impl SpanGuard {
    /// Attaches a deterministic key/value annotation, rendered by both
    /// the text and Chrome exporters. Values must therefore be
    /// reproducible quantities (virtual times, counts, names, reasons)
    /// — wall measurements go through [`Self::wall_ns`] instead.
    pub fn arg(&self, key: &'static str, value: impl Display) {
        if let Some((tel, idx)) = &self.state {
            tel.inner.spans.lock().records[*idx]
                .args
                .push((key, value.to_string()));
        }
    }

    /// Attaches the span's measured wall-clock duration. Quarantined:
    /// exported only to the Chrome trace, never to the deterministic
    /// text rendering.
    pub fn wall_ns(&self, ns: u64) {
        if let Some((tel, idx)) = &self.state {
            tel.inner.spans.lock().records[*idx].wall_ns = Some(ns);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((tel, idx)) = self.state.take() {
            let end = tel.inner.clock.fetch_add(1, Ordering::Relaxed);
            tel.inner.span_events.fetch_add(1, Ordering::Relaxed);
            let mut log = tel.inner.spans.lock();
            log.records[idx].end = end;
            log.stack.retain(|&i| i != idx);
        }
    }
}

impl Telemetry {
    /// Opens a span; it closes when the returned guard drops. When the
    /// instance is disabled this is a single relaxed load returning an
    /// inert guard.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return SpanGuard { state: None };
        }
        let start = self.inner.clock.fetch_add(1, Ordering::Relaxed);
        self.inner.span_events.fetch_add(1, Ordering::Relaxed);
        let mut log = self.inner.spans.lock();
        let idx = log.records.len();
        let depth = log.stack.len();
        log.records.push(SpanRecord {
            name,
            depth,
            start,
            end: start,
            args: Vec::new(),
            wall_ns: None,
            instant: false,
        });
        log.stack.push(idx);
        drop(log);
        // Flight-recorder shadow copy: spans are control-plane events.
        self.record_at(CONTROL_RANK, RecordKind::Span, name, String::new(), start);
        SpanGuard {
            state: Some((self.clone(), idx)),
        }
    }

    /// Records a zero-duration event (one logical tick) with its
    /// deterministic annotations — used for point decisions like "drop
    /// function X" or "cold start because the profile was malformed".
    pub fn instant(&self, name: &'static str, args: &[(&'static str, String)]) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        let tick = self.inner.clock.fetch_add(1, Ordering::Relaxed);
        self.inner.span_events.fetch_add(1, Ordering::Relaxed);
        let mut log = self.inner.spans.lock();
        let depth = log.stack.len();
        log.records.push(SpanRecord {
            name,
            depth,
            start: tick,
            end: tick,
            args: args.to_vec(),
            wall_ns: None,
            instant: true,
        });
        drop(log);
        if self.inner.recorder.armed_cap() > 0 {
            let mut detail = String::new();
            for (k, v) in args {
                if !detail.is_empty() {
                    detail.push(' ');
                }
                let _ = write!(detail, "{k}={v}");
            }
            self.record_at(CONTROL_RANK, RecordKind::Instant, name, detail, tick);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn spans_nest_and_tick_the_logical_clock() {
        let t = Telemetry::new();
        {
            let run = t.span("run");
            run.arg("epochs", 2);
            {
                let epoch = t.span("epoch");
                epoch.arg("index", 0);
                t.instant("decision", &[("action", "drop".to_string())]);
            }
        }
        let log = t.inner.spans.lock();
        assert_eq!(log.records.len(), 3);
        assert!(log.stack.is_empty());
        let (run, epoch, inst) = (&log.records[0], &log.records[1], &log.records[2]);
        assert_eq!((run.name, run.depth), ("run", 0));
        assert_eq!((epoch.name, epoch.depth), ("epoch", 1));
        assert!(inst.instant && inst.start == inst.end && inst.depth == 2);
        // begin(run)=0, begin(epoch)=1, instant=2, end(epoch)=3, end(run)=4
        assert_eq!((run.start, run.end), (0, 4));
        assert_eq!((epoch.start, epoch.end), (1, 3));
        assert_eq!(inst.start, 2);
        assert_eq!(t.self_stats().span_events, 5);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let t = Telemetry::disabled();
        {
            let s = t.span("run");
            s.arg("k", 1);
            s.wall_ns(99);
            t.instant("i", &[]);
        }
        assert!(t.inner.spans.lock().records.is_empty());
        assert_eq!(t.self_stats().span_events, 0);
    }

    #[test]
    fn wall_ns_is_recorded_but_flagged_separately() {
        let t = Telemetry::new();
        {
            let s = t.span("repatch");
            s.wall_ns(1234);
        }
        let log = t.inner.spans.lock();
        assert_eq!(log.records[0].wall_ns, Some(1234));
    }
}
