//! Exporters: the byte-deterministic text rendering for tests and the
//! Chrome trace-event JSON file for humans.

use crate::registry::{Telemetry, HIST_BUCKETS, STRIPES};
use crate::HistogramKind;
use serde_json::{json, Value};
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

/// A merged counter value at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registered name.
    pub name: String,
    /// Sum over all stripes.
    pub value: u64,
}

/// A gauge's last-written value at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Registered name.
    pub name: String,
    /// Last value stored.
    pub value: u64,
}

/// A merged histogram at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Determinism class fixed at registration.
    pub kind: HistogramKind,
    /// Total samples over all stripes.
    pub count: u64,
    /// Sum of all samples over all stripes.
    pub sum: u64,
    /// Per-bucket sample counts (bucket = value bit length).
    pub buckets: Vec<u64>,
}

/// All metrics merged across stripes, each section sorted by name —
/// the deterministic readback the exporters are built from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Appends the name-sorted metric sections (`counters:` /
    /// `gauges:` / `histograms:`) to `out` — the shared body of
    /// [`Telemetry::render_text`] and the post-mortem dump, so both
    /// render metrics byte-identically.
    pub fn render_sections(&self, out: &mut String) {
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for c in &self.counters {
                let _ = writeln!(out, "  {} = {}", c.name, c.value);
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for g in &self.gauges {
                let _ = writeln!(out, "  {} = {}", g.name, g.value);
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.histograms {
                match h.kind {
                    HistogramKind::Logical => {
                        let _ = write!(out, "  {}: count={} sum={}", h.name, h.count, h.sum);
                        let nonzero: Vec<String> = h
                            .buckets
                            .iter()
                            .enumerate()
                            .filter(|(_, n)| **n > 0)
                            .map(|(b, n)| format!("b{b}:{n}"))
                            .collect();
                        if !nonzero.is_empty() {
                            let _ = write!(out, " buckets{{{}}}", nonzero.join(" "));
                        }
                        out.push('\n');
                    }
                    HistogramKind::Wall => {
                        // Wall sums/buckets are nondeterministic: count only.
                        let _ = writeln!(out, "  {}: count={} [wall]", h.name, h.count);
                    }
                }
            }
        }
    }

    /// The OpenMetrics/Prometheus text exposition of this snapshot:
    /// name-sorted, `capi_`-prefixed, byte-deterministic. Logical
    /// histograms export cumulative `_bucket{le="…"}` series (bucket
    /// `b` holds values of bit length `b`, so its upper bound is
    /// `2^b - 1`) plus `_sum`/`_count`; wall histograms export only
    /// their deterministic sample count, as a `_samples` counter. Ends
    /// with the spec's `# EOF` terminator.
    pub fn render_openmetrics(&self) -> String {
        fn metric_name(raw: &str) -> String {
            let mut name = String::with_capacity(raw.len() + 5);
            name.push_str("capi_");
            for ch in raw.chars() {
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    name.push(ch);
                } else {
                    name.push('_');
                }
            }
            name
        }
        let mut out = String::new();
        // Wall histograms join the counter section (their sums and
        // buckets are nondeterministic, only the sample count is
        // exposed), so each section stays fully name-sorted.
        let mut counters: Vec<(String, u64)> = self
            .counters
            .iter()
            .map(|c| (metric_name(&c.name), c.value))
            .collect();
        counters.extend(
            self.histograms
                .iter()
                .filter(|h| h.kind == HistogramKind::Wall)
                .map(|h| (metric_name(&format!("{}_samples", h.name)), h.count)),
        );
        counters.sort();
        for (name, value) in &counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name}_total {value}");
        }
        for g in &self.gauges {
            let name = metric_name(&g.name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", g.value);
        }
        for h in self
            .histograms
            .iter()
            .filter(|h| h.kind == HistogramKind::Logical)
        {
            let name = metric_name(&h.name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative += n;
                // Bucket b's upper bound: largest value of bit
                // length b (0 for the zero bucket).
                let le = (1u64 << b) - 1;
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out.push_str("# EOF\n");
        out
    }
}

impl Telemetry {
    /// Merges every registered metric across stripes into a snapshot
    /// whose ordering (name-sorted) and values (commutative sums) are
    /// independent of rank interleaving.
    pub fn metrics(&self) -> MetricsSnapshot {
        let dir = self.inner.directory.lock();
        let mut counters: Vec<CounterSnapshot> = dir
            .counters
            .iter()
            .enumerate()
            .map(|(i, name)| CounterSnapshot {
                name: name.clone(),
                value: self
                    .inner
                    .stripes
                    .iter()
                    .map(|s| s.counters[i].load(Ordering::Relaxed))
                    .sum(),
            })
            .collect();
        let mut gauges: Vec<GaugeSnapshot> = dir
            .gauges
            .iter()
            .enumerate()
            .map(|(i, name)| GaugeSnapshot {
                name: name.clone(),
                value: self.inner.gauges[i].load(Ordering::Relaxed),
            })
            .collect();
        let mut histograms: Vec<HistogramSnapshot> = dir
            .histograms
            .iter()
            .enumerate()
            .map(|(i, (name, kind))| {
                let mut buckets = vec![0u64; HIST_BUCKETS];
                let mut count = 0u64;
                let mut sum = 0u64;
                for s in self.inner.stripes.iter() {
                    count += s.hist_count[i].load(Ordering::Relaxed);
                    sum += s.hist_sum[i].load(Ordering::Relaxed);
                    for (b, slot) in buckets.iter_mut().enumerate() {
                        *slot += s.hist_buckets[i][b].load(Ordering::Relaxed);
                    }
                }
                HistogramSnapshot {
                    name: name.clone(),
                    kind: *kind,
                    count,
                    sum,
                    buckets,
                }
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// The byte-deterministic text rendering: span tree with logical
    /// ticks and deterministic args, then name-sorted metric sections.
    /// Wall-clock data (span `wall_ns`, [`HistogramKind::Wall`] sums
    /// and buckets) is omitted, so two identical runs render
    /// byte-identical text.
    pub fn render_text(&self) -> String {
        let snap = self.metrics();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# capi-obs telemetry ({} logical ticks, {} stripes)",
            self.inner.clock.load(Ordering::Relaxed),
            STRIPES
        );
        {
            let log = self.inner.spans.lock();
            if !log.records.is_empty() {
                out.push_str("spans:\n");
                for r in &log.records {
                    let _ = write!(out, "  {}", "  ".repeat(r.depth));
                    if r.instant {
                        let _ = write!(out, "! {} [{}]", r.name, r.start);
                    } else {
                        let _ = write!(out, "{} [{}-{}]", r.name, r.start, r.end);
                    }
                    for (k, v) in &r.args {
                        let _ = write!(out, " {k}={v}");
                    }
                    out.push('\n');
                }
            }
        }
        snap.render_sections(&mut out);
        let stats = self.self_stats();
        let _ = writeln!(
            out,
            "self:\n  metric_updates = {}\n  span_events = {}",
            stats.metric_updates, stats.span_events
        );
        out
    }

    /// The Chrome trace-event JSON document (`chrome://tracing` /
    /// Perfetto format): complete (`"X"`) events for spans — `ts` in
    /// logical ticks, with measured `wall_ns` attached as an arg where
    /// recorded — instant (`"i"`) events for point decisions, and
    /// counter (`"C"`) tracks for every gauge update plus final merged
    /// counter values.
    pub fn chrome_trace_json(&self) -> Value {
        let mut events: Vec<Value> = vec![json!({
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": "capi adaptation runtime"},
        })];
        let gauge_names: Vec<String> = self.inner.directory.lock().gauges.clone();
        let final_tick = self.inner.clock.load(Ordering::Relaxed);
        {
            let log = self.inner.spans.lock();
            for r in &log.records {
                let mut args = serde_json::Map::new();
                for (k, v) in &r.args {
                    args.insert((*k).to_string(), Value::String(v.clone()));
                }
                if r.instant {
                    events.push(json!({
                        "name": r.name, "ph": "i", "s": "t",
                        "pid": 1, "tid": 1, "ts": r.start,
                        "args": Value::Object(args),
                    }));
                } else {
                    if let Some(ns) = r.wall_ns {
                        args.insert("wall_ns".to_string(), json!(ns));
                    }
                    events.push(json!({
                        "name": r.name, "ph": "X",
                        "pid": 1, "tid": 1, "ts": r.start,
                        "dur": (r.end.saturating_sub(r.start)).max(1),
                        "args": Value::Object(args),
                    }));
                }
            }
            for &(g, tick, value) in &log.gauge_points {
                let name = gauge_names.get(g).map(String::as_str).unwrap_or("gauge");
                events.push(json!({
                    "name": name, "ph": "C", "pid": 1, "tid": 1, "ts": tick,
                    "args": {"value": value},
                }));
            }
        }
        for c in &self.metrics().counters {
            events.push(json!({
                "name": c.name, "ph": "C", "pid": 1, "tid": 1, "ts": final_tick,
                "args": {"value": c.value},
            }));
        }
        json!({
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"clock": "logical-ticks", "source": "capi-obs"},
        })
    }

    /// Serialises [`Self::chrome_trace_json`] to `path` (pretty-printed
    /// with a trailing newline).
    pub fn write_chrome_trace(&self, path: &str) -> std::io::Result<()> {
        let mut text = serde_json::to_string_pretty(&self.chrome_trace_json())
            .expect("chrome trace document is always serialisable");
        text.push('\n');
        std::fs::write(path, text)
    }

    /// The OpenMetrics text exposition of the current metrics — see
    /// [`MetricsSnapshot::render_openmetrics`].
    pub fn render_openmetrics(&self) -> String {
        self.metrics().render_openmetrics()
    }

    /// Writes [`Self::render_openmetrics`] to `path` (wired to the
    /// `CAPI_METRICS_OUT` environment knob by `capi-dyncapi`).
    pub fn write_openmetrics(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.render_openmetrics())
    }
}

#[cfg(test)]
mod tests {
    use crate::{HistogramKind, Telemetry};

    fn sample_run(t: &Telemetry) {
        let c = t.counter("xray.dispatches");
        let g = t.gauge("exec.events");
        let h = t.histogram("virtual_ns", HistogramKind::Logical);
        let w = t.histogram("publish_wall", HistogramKind::Wall);
        {
            let run = t.span("dyncapi.run");
            run.arg("epochs", 2);
            {
                let e = t.span("exec.epoch");
                e.arg("index", 0);
                e.wall_ns(123_456);
                t.instant("adapt.decision", &[("action", "drop".to_string())]);
            }
            t.add(c, 0, 10);
            t.add(c, 3, 5);
            t.observe(h, 1, 700);
            t.observe_control(w, 42);
            t.set(g, 9000);
        }
    }

    #[test]
    fn text_rendering_is_byte_identical_across_runs() {
        let a = Telemetry::new();
        let b = Telemetry::new();
        sample_run(&a);
        sample_run(&b);
        let ra = a.render_text();
        assert_eq!(ra, b.render_text());
        assert!(ra.contains("dyncapi.run [0-"));
        assert!(ra.contains("! adapt.decision"));
        assert!(ra.contains("xray.dispatches = 15"));
        assert!(ra.contains("publish_wall: count=1 [wall]"));
        // Wall values are quarantined out of the text rendering.
        assert!(!ra.contains("123456") && !ra.contains("wall_ns"));
    }

    #[test]
    fn chrome_trace_has_spans_instants_and_counters() {
        let t = Telemetry::new();
        sample_run(&t);
        let doc = t.chrome_trace_json();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let name_of =
            |e: &serde_json::Value| e.get("name").and_then(|n| n.as_str()).map(str::to_string);
        let names: Vec<String> = events.iter().filter_map(name_of).collect();
        for expect in [
            "dyncapi.run",
            "exec.epoch",
            "adapt.decision",
            "exec.events",
            "xray.dispatches",
        ] {
            assert!(
                names.iter().any(|n| n == expect),
                "missing {expect} in {names:?}"
            );
        }
        let epoch = events
            .iter()
            .find(|e| name_of(e).as_deref() == Some("exec.epoch"))
            .unwrap();
        assert_eq!(epoch.get("ph").unwrap().as_str(), Some("X"));
        let wall = epoch.get("args").unwrap().get("wall_ns").unwrap();
        assert_eq!(wall.as_u64(), Some(123_456));
        let decision = events
            .iter()
            .find(|e| name_of(e).as_deref() == Some("adapt.decision"))
            .unwrap();
        assert_eq!(decision.get("ph").unwrap().as_str(), Some("i"));
        let action = decision.get("args").unwrap().get("action").unwrap();
        assert_eq!(action.as_str(), Some("drop"));
    }

    #[test]
    fn write_chrome_trace_emits_parseable_json() {
        let t = Telemetry::new();
        sample_run(&t);
        let path = std::env::temp_dir().join(format!("capi_obs_trace_{}.json", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        t.write_chrome_trace(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert!(doc.get("traceEvents").unwrap().as_array().unwrap().len() > 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn openmetrics_exposition_is_stable_ordered_and_terminated() {
        let a = Telemetry::new();
        let b = Telemetry::new();
        sample_run(&a);
        sample_run(&b);
        let ra = a.render_openmetrics();
        assert_eq!(ra, b.render_openmetrics(), "byte-deterministic");
        assert!(ra.ends_with("# EOF\n"));
        assert!(ra.contains("# TYPE capi_xray_dispatches counter\ncapi_xray_dispatches_total 15\n"));
        assert!(ra.contains("# TYPE capi_exec_events gauge\ncapi_exec_events 9000\n"));
        // Logical histogram: one sample of 700 (bit length 10 → bucket
        // 10, upper bound 2^10-1 = 1023), cumulative + +Inf + sum/count.
        assert!(ra.contains("# TYPE capi_virtual_ns histogram\n"));
        assert!(ra.contains("capi_virtual_ns_bucket{le=\"1023\"} 1\n"));
        assert!(ra.contains("capi_virtual_ns_bucket{le=\"+Inf\"} 1\n"));
        assert!(ra.contains("capi_virtual_ns_sum 700\n"));
        assert!(ra.contains("capi_virtual_ns_count 1\n"));
        // Wall histogram: deterministic sample count only, as a counter.
        assert!(ra.contains("# TYPE capi_publish_wall_samples counter\n"));
        assert!(ra.contains("capi_publish_wall_samples_total 1\n"));
        assert!(!ra.contains("publish_wall_sum"), "wall sums quarantined");
        // Counters sort before gauges, and within sections by name.
        let dispatches = ra.find("capi_xray_dispatches_total").unwrap();
        let events = ra.find("capi_exec_events ").unwrap();
        assert!(dispatches < events);
    }

    #[test]
    fn metrics_snapshot_sections_are_name_sorted() {
        let t = Telemetry::new();
        t.counter("zeta");
        t.counter("alpha");
        t.gauge("mid");
        t.gauge("aaa");
        let snap = t.metrics();
        assert_eq!(snap.counters[0].name, "alpha");
        assert_eq!(snap.counters[1].name, "zeta");
        assert_eq!(snap.gauges[0].name, "aaa");
    }
}
