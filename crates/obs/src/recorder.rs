//! The flight recorder: bounded, cache-padded per-rank ring buffers
//! continuously capturing a compact structured record of recent
//! control-plane activity — spans, adaptation decisions, repatch
//! publishes, lifecycle degradations, health firings — plus per-rank
//! marks from the executor.
//!
//! The recorder is the bounded-retention counterpart of the span log:
//! the span log grows for the life of a run (it is the full trace), the
//! recorder keeps only the last `cap` entries per ring and evicts
//! oldest-first, so a post-mortem dump always has the *recent* history
//! at a fixed memory cost, no matter how long the run was.
//!
//! # Determinism contract
//!
//! Entries carry a per-ring sequence number and the logical-clock tick
//! at capture. The merged readback ([`Telemetry::recorder_entries`])
//! sorts by `(rank, seq)` — the same fold-at-read rule the event log
//! and the metric stripes use — so the rendering is byte-deterministic
//! whenever each ring's push order is deterministic. Control-plane
//! records are serialized by the control thread; per-rank records land
//! on the rank's own ring (`rank & (STRIPES - 1)`), so with up to
//! [`STRIPES`] ranks each ring is single-writer. Ranks past the stripe
//! count share rings (their intra-ring interleaving is arbitrary, but
//! the `(rank, seq)` sort still orders every rank's own entries).
//!
//! # Cost discipline
//!
//! Same as the registry: when telemetry is disabled — or the capacity
//! is 0 — [`Telemetry::record`] is a relaxed load (or two) and an early
//! return. Enabled captures take the target ring's mutex (never shared
//! with another rank's hot path) and push one entry.

use crate::registry::{Telemetry, CONTROL_STRIPE, STRIPES};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default ring capacity (entries per rank ring), overridable with the
/// `CAPI_RECORDER_CAP` environment knob (see
/// [`crate::recorder_cap_from_env`]).
pub const DEFAULT_RECORDER_CAP: usize = 256;

/// The pseudo-rank control-plane records are captured under. Sorts
/// after every real rank in the merged readback.
pub const CONTROL_RANK: u32 = u32::MAX;

/// What a recorder entry describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// A span opened ([`Telemetry::span`]) — captured automatically.
    Span,
    /// An instant event ([`Telemetry::instant`]) — captured
    /// automatically, args folded into the detail. Adaptation decisions
    /// (`adapt.decision`) arrive through this kind.
    Instant,
    /// A dispatch-table publish (repatch/registration) in `capi-xray`.
    Repatch,
    /// A typed lifecycle degradation (failed dlopen, degraded repatch,
    /// unload race) in `capi-dyncapi`.
    Lifecycle,
    /// A health-detector firing ([`crate::health`]).
    Health,
    /// A caller-defined deterministic mark (e.g. the executor's
    /// per-rank epoch completion).
    Mark,
}

impl RecordKind {
    /// Stable lowercase tag used by both renderings.
    pub fn as_str(&self) -> &'static str {
        match self {
            RecordKind::Span => "span",
            RecordKind::Instant => "instant",
            RecordKind::Repatch => "repatch",
            RecordKind::Lifecycle => "lifecycle",
            RecordKind::Health => "health",
            RecordKind::Mark => "mark",
        }
    }
}

/// One captured entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecorderEntry {
    /// Capturing rank, or [`CONTROL_RANK`] for control-plane records.
    pub rank: u32,
    /// Per-ring sequence number (0-based, never reused; eviction does
    /// not renumber survivors).
    pub seq: u64,
    /// Logical-clock tick at capture.
    pub tick: u64,
    /// Entry kind.
    pub kind: RecordKind,
    /// Event name (span/instant name, or the explicit record's name).
    pub name: &'static str,
    /// Deterministic detail text (may be empty).
    pub detail: String,
}

#[derive(Default)]
struct RingState {
    entries: VecDeque<RecorderEntry>,
    seq: u64,
    evicted: u64,
}

/// One cache-line-aligned ring, mirroring [`crate::STRIPES`]'
/// `MetricStripe` padding so concurrent ranks never share a line.
#[repr(align(64))]
struct RecorderRing {
    state: Mutex<RingState>,
}

impl RecorderRing {
    fn new() -> Self {
        Self {
            state: Mutex::new(RingState::default()),
        }
    }
}

/// The recorder: `STRIPES` rank rings plus the control ring.
pub(crate) struct Recorder {
    cap: AtomicUsize,
    rings: Box<[RecorderRing]>,
}

impl Recorder {
    pub(crate) fn new(cap: usize) -> Self {
        Self {
            cap: AtomicUsize::new(cap),
            rings: (0..=STRIPES).map(|_| RecorderRing::new()).collect(),
        }
    }

    /// Current capacity — 0 means captures are dropped.
    #[inline]
    pub(crate) fn armed_cap(&self) -> usize {
        self.cap.load(Ordering::Relaxed)
    }

    #[inline]
    fn ring_index(rank: u32) -> usize {
        if rank == CONTROL_RANK {
            CONTROL_STRIPE
        } else {
            rank as usize & (STRIPES - 1)
        }
    }
}

/// Retention accounting for the recorder.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Current per-ring capacity.
    pub cap: usize,
    /// Entries captured over the recorder's lifetime.
    pub captured: u64,
    /// Entries evicted (oldest-first) to keep rings within capacity.
    pub evicted: u64,
    /// Entries currently retained across all rings.
    pub retained: usize,
}

impl Telemetry {
    /// Current per-ring capacity of the flight recorder.
    pub fn recorder_cap(&self) -> usize {
        self.inner.recorder.cap.load(Ordering::Relaxed)
    }

    /// Sets the per-ring capacity. 0 disarms the recorder (captures
    /// become a relaxed load + early return); shrinking evicts
    /// oldest-first on the next capture per ring. Already-captured
    /// entries are kept until then.
    pub fn set_recorder_cap(&self, cap: usize) {
        self.inner.recorder.cap.store(cap, Ordering::Relaxed);
    }

    /// Whether a capture would record anything: telemetry enabled *and*
    /// capacity non-zero. Callers that format a detail string should
    /// check this first so the disabled path stays allocation-free.
    #[inline]
    pub fn recorder_armed(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
            && self.inner.recorder.cap.load(Ordering::Relaxed) > 0
    }

    /// Captures one entry onto `rank`'s ring ([`CONTROL_RANK`] for
    /// control-plane events). Disarmed: a relaxed load (or two) and an
    /// early return. The logical clock is *read*, never advanced —
    /// capture does not perturb span ordering.
    pub fn record(&self, rank: u32, kind: RecordKind, name: &'static str, detail: String) {
        if !self.recorder_armed() {
            return;
        }
        self.record_unchecked(rank, kind, name, detail);
    }

    /// Capture without re-checking the armed state — internal fast path
    /// for call sites that already checked.
    pub(crate) fn record_unchecked(
        &self,
        rank: u32,
        kind: RecordKind,
        name: &'static str,
        detail: String,
    ) {
        let tick = self.inner.clock.load(Ordering::Relaxed);
        self.record_at(rank, kind, name, detail, tick);
    }

    /// Capture stamped with an explicit logical tick — used by the span
    /// hooks so an entry carries its event's own start tick.
    pub(crate) fn record_at(
        &self,
        rank: u32,
        kind: RecordKind,
        name: &'static str,
        detail: String,
        tick: u64,
    ) {
        let rec = &self.inner.recorder;
        let cap = rec.cap.load(Ordering::Relaxed);
        if cap == 0 {
            return;
        }
        let mut ring = rec.rings[Recorder::ring_index(rank)].state.lock();
        let seq = ring.seq;
        ring.seq += 1;
        ring.entries.push_back(RecorderEntry {
            rank,
            seq,
            tick,
            kind,
            name,
            detail,
        });
        while ring.entries.len() > cap {
            ring.entries.pop_front();
            ring.evicted += 1;
        }
    }

    /// The retained entries of every ring, merged deterministically by
    /// `(rank, seq)` — the fold-at-read primitive the post-mortem dump
    /// and the text rendering are built from.
    pub fn recorder_entries(&self) -> Vec<RecorderEntry> {
        let mut out = Vec::new();
        for ring in self.inner.recorder.rings.iter() {
            out.extend(ring.state.lock().entries.iter().cloned());
        }
        out.sort_by_key(|e| (e.rank, e.seq));
        out
    }

    /// Retention accounting across all rings.
    pub fn recorder_stats(&self) -> RecorderStats {
        let mut stats = RecorderStats {
            cap: self.recorder_cap(),
            ..Default::default()
        };
        for ring in self.inner.recorder.rings.iter() {
            let s = ring.state.lock();
            stats.captured += s.seq;
            stats.evicted += s.evicted;
            stats.retained += s.entries.len();
        }
        stats
    }

    /// The byte-deterministic text rendering of the merged recorder
    /// contents: one header line, then one line per retained entry in
    /// `(rank, seq)` order. Control-plane entries render as `ctl`.
    pub fn render_recorder(&self) -> String {
        let stats = self.recorder_stats();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# flight recorder (cap {}/ring, captured {}, evicted {}, retained {})",
            stats.cap, stats.captured, stats.evicted, stats.retained
        );
        for e in self.recorder_entries() {
            if e.rank == CONTROL_RANK {
                let _ = write!(out, "  ctl");
            } else {
                let _ = write!(out, "  r{}", e.rank);
            }
            let _ = write!(
                out,
                " #{} @{} {} {}",
                e.seq,
                e.tick,
                e.kind.as_str(),
                e.name
            );
            if !e.detail.is_empty() {
                let _ = write!(out, ": {}", e.detail);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_merge_by_rank_then_seq() {
        let t = Telemetry::new();
        t.record(1, RecordKind::Mark, "m", "b".into());
        t.record(0, RecordKind::Mark, "m", "a".into());
        t.record(
            CONTROL_RANK,
            RecordKind::Repatch,
            "xray.publish",
            "gen=1".into(),
        );
        t.record(0, RecordKind::Mark, "m", "c".into());
        let entries = t.recorder_entries();
        let view: Vec<(u32, u64, &str)> = entries
            .iter()
            .map(|e| (e.rank, e.seq, e.detail.as_str()))
            .collect();
        assert_eq!(
            view,
            vec![
                (0, 0, "a"),
                (0, 1, "c"),
                (1, 0, "b"),
                (CONTROL_RANK, 0, "gen=1"),
            ]
        );
        let text = t.render_recorder();
        assert!(text.contains("r0 #1 @0 mark m: c"));
        assert!(text.contains("ctl #0 @0 repatch xray.publish: gen=1"));
    }

    #[test]
    fn capacity_overflow_evicts_oldest_first() {
        let t = Telemetry::new();
        t.set_recorder_cap(3);
        for i in 0..8u64 {
            t.record(2, RecordKind::Mark, "m", i.to_string());
        }
        let entries = t.recorder_entries();
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![5, 6, 7], "oldest evicted, seqs never renumber");
        let stats = t.recorder_stats();
        assert_eq!((stats.captured, stats.evicted, stats.retained), (8, 5, 3));
    }

    #[test]
    fn disarmed_recorder_captures_nothing() {
        let t = Telemetry::new();
        t.set_recorder_cap(0);
        assert!(!t.recorder_armed());
        t.record(0, RecordKind::Mark, "m", "x".into());
        assert!(t.recorder_entries().is_empty());
        let d = Telemetry::disabled();
        assert!(!d.recorder_armed());
        d.record(0, RecordKind::Mark, "m", "x".into());
        assert!(d.recorder_entries().is_empty());
        // Re-arming resumes capture on the same instance.
        t.set_recorder_cap(4);
        t.record(0, RecordKind::Mark, "m", "y".into());
        assert_eq!(t.recorder_entries().len(), 1);
    }

    #[test]
    fn spans_and_instants_are_captured_automatically() {
        let t = Telemetry::new();
        {
            let _run = t.span("dyncapi.run");
            t.instant(
                "adapt.decision",
                &[("action", "drop".into()), ("target", "tiny_hot".into())],
            );
        }
        let entries = t.recorder_entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].kind, RecordKind::Span);
        assert_eq!(entries[0].name, "dyncapi.run");
        assert_eq!(entries[1].kind, RecordKind::Instant);
        assert_eq!(entries[1].detail, "action=drop target=tiny_hot");
        assert!(entries.iter().all(|e| e.rank == CONTROL_RANK));
    }

    #[test]
    fn rendering_is_identical_across_per_ring_interleavings() {
        // Two schedules interleaving rank 0 / rank 1 captures
        // differently produce the same merged rendering, because each
        // ring's own order is what the (rank, seq) sort preserves.
        let run = |order: &[u32]| {
            let t = Telemetry::new();
            let mut per_rank = [0u64; 2];
            for &r in order {
                t.record(r, RecordKind::Mark, "m", per_rank[r as usize].to_string());
                per_rank[r as usize] += 1;
            }
            t.render_recorder()
        };
        let a = run(&[0, 0, 1, 0, 1, 1]);
        let b = run(&[1, 0, 1, 0, 0, 1]);
        assert_eq!(a, b);
    }
}
