//! The metrics registry: striped counters/histograms, control-plane
//! gauges, the logical clock, and the enable switch.

use crate::recorder::{Recorder, DEFAULT_RECORDER_CAP};
use crate::span::SpanLog;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of metric stripes. Ranks map onto stripes by
/// `rank & (STRIPES - 1)` — the same folding rule `capi-xray` uses for
/// its dispatch counters, so per-stripe folds between the two line up
/// one-to-one.
pub const STRIPES: usize = 64;

/// Index of the extra stripe reserved for control-plane updates
/// (publish counts, span-adjacent metrics), mirroring the xray
/// runtime's control stripe.
pub(crate) const CONTROL_STRIPE: usize = STRIPES;

/// Maximum counters the registry can hold. Registration past the cap
/// panics: the metric set is a fixed, internal vocabulary, not
/// user-extensible cardinality.
pub const MAX_COUNTERS: usize = 64;

/// Maximum gauges the registry can hold.
pub const MAX_GAUGES: usize = 64;

/// Maximum histograms the registry can hold.
pub const MAX_HISTOGRAMS: usize = 16;

/// Power-of-two buckets per histogram: bucket `b` holds values whose
/// bit length is `b` (value 0 lands in bucket 0, values ≥ 2³⁰ saturate
/// into the last bucket).
pub const HIST_BUCKETS: usize = 32;

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(pub(crate) usize);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(pub(crate) usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(pub(crate) usize);

/// What a histogram's samples mean for the determinism contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistogramKind {
    /// Values are virtual/logical quantities: fully deterministic, the
    /// text exporter renders count, sum and buckets.
    Logical,
    /// Values are wall-clock measurements: the text exporter renders
    /// only the (deterministic) sample count; sums and buckets go to
    /// the Chrome trace alone.
    Wall,
}

/// One cache-line-aligned stripe of metric slots. A rank's updates land
/// on its own stripe, so concurrent ranks never contend; totals are the
/// sum over stripes, which is interleaving-independent by
/// commutativity.
#[repr(align(64))]
pub(crate) struct MetricStripe {
    pub(crate) counters: [AtomicU64; MAX_COUNTERS],
    pub(crate) hist_count: [AtomicU64; MAX_HISTOGRAMS],
    pub(crate) hist_sum: [AtomicU64; MAX_HISTOGRAMS],
    pub(crate) hist_buckets: [[AtomicU64; HIST_BUCKETS]; MAX_HISTOGRAMS],
    /// Mutations applied through this stripe — the registry's
    /// self-overhead ledger.
    pub(crate) self_updates: AtomicU64,
}

impl MetricStripe {
    fn new() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_count: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_sum: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_buckets: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            self_updates: AtomicU64::new(0),
        }
    }
}

/// Name directory — cold path only, behind a mutex. Registration is
/// idempotent by name so repeated wiring (e.g. an engine re-prepared
/// every epoch) reuses the same slots.
pub(crate) struct Directory {
    pub(crate) counters: Vec<String>,
    pub(crate) gauges: Vec<String>,
    pub(crate) histograms: Vec<(String, HistogramKind)>,
}

pub(crate) struct Inner {
    pub(crate) enabled: AtomicBool,
    /// The logical clock: advanced only by span/instant events on the
    /// control thread, never by metric updates.
    pub(crate) clock: AtomicU64,
    pub(crate) span_events: AtomicU64,
    pub(crate) directory: Mutex<Directory>,
    /// `STRIPES` rank stripes plus the control stripe.
    pub(crate) stripes: Box<[MetricStripe]>,
    pub(crate) gauges: [AtomicU64; MAX_GAUGES],
    pub(crate) spans: Mutex<SpanLog>,
    /// The bounded flight recorder (see [`crate::recorder`]).
    pub(crate) recorder: Recorder,
}

/// Registry self-accounting counters (see the crate docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SelfStats {
    /// Metric mutations performed (counter adds/stores, histogram
    /// observations, gauge sets).
    pub metric_updates: u64,
    /// Span and instant events recorded.
    pub span_events: u64,
}

/// A telemetry handle — cheap to clone ([`Arc`] inside), shared by
/// every wired subsystem of one adaptive run.
#[derive(Clone)]
pub struct Telemetry {
    pub(crate) inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let dir = self.inner.directory.lock();
        f.debug_struct("Telemetry")
            .field("enabled", &self.inner.enabled.load(Ordering::Relaxed))
            .field("clock", &self.inner.clock.load(Ordering::Relaxed))
            .field("counters", &dir.counters.len())
            .field("gauges", &dir.gauges.len())
            .field("histograms", &dir.histograms.len())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    fn with_enabled(enabled: bool) -> Self {
        Self {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(enabled),
                clock: AtomicU64::new(0),
                span_events: AtomicU64::new(0),
                directory: Mutex::new(Directory {
                    counters: Vec::new(),
                    gauges: Vec::new(),
                    histograms: Vec::new(),
                }),
                stripes: (0..=STRIPES).map(|_| MetricStripe::new()).collect(),
                gauges: std::array::from_fn(|_| AtomicU64::new(0)),
                spans: Mutex::new(SpanLog::default()),
                recorder: Recorder::new(DEFAULT_RECORDER_CAP),
            }),
        }
    }

    /// A new, enabled telemetry instance. Explicit construction implies
    /// the caller wants the data; use [`Self::disabled`] to wire the
    /// call sites while keeping the fast-path cost at one relaxed load.
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// A new instance with recording switched off: every metric and
    /// span operation reduces to a single relaxed load and an early
    /// return.
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    /// The instance requested by the environment: `Some` (enabled) when
    /// `CAPI_TELEMETRY` is truthy (`1`/`true`/`on`/`yes`) **or** any of
    /// `CAPI_TRACE_OUT` / `CAPI_METRICS_OUT` / `CAPI_DUMP_OUT` names an
    /// output file (asking for an artifact implies wanting the data),
    /// `None` otherwise. A `CAPI_RECORDER_CAP` knob is applied to the
    /// returned instance's flight recorder.
    pub fn from_env() -> Option<Self> {
        let truthy = |v: String| matches!(v.trim(), "1" | "true" | "on" | "yes");
        let wanted = std::env::var("CAPI_TELEMETRY").map(truthy).unwrap_or(false)
            || crate::trace_out_from_env().is_some()
            || crate::metrics_out_from_env().is_some()
            || crate::dump_out_from_env().is_some();
        wanted.then(|| {
            let tel = Self::new();
            if let Some(cap) = crate::recorder_cap_from_env() {
                tel.set_recorder_cap(cap);
            }
            tel
        })
    }

    /// Whether recording is currently on.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Switches recording on or off. Already-recorded data is kept.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    // ---- registration (cold path) ------------------------------------

    /// Registers (or finds) a counter by name.
    ///
    /// Panics when more than [`MAX_COUNTERS`] distinct counters are
    /// registered — the metric vocabulary is fixed by the runtime, not
    /// data-driven.
    pub fn counter(&self, name: &str) -> CounterId {
        let mut dir = self.inner.directory.lock();
        if let Some(i) = dir.counters.iter().position(|n| n == name) {
            return CounterId(i);
        }
        assert!(
            dir.counters.len() < MAX_COUNTERS,
            "capi-obs: counter capacity ({MAX_COUNTERS}) exhausted registering {name:?}"
        );
        dir.counters.push(name.to_string());
        CounterId(dir.counters.len() - 1)
    }

    /// Registers (or finds) a gauge by name. Panics past [`MAX_GAUGES`].
    pub fn gauge(&self, name: &str) -> GaugeId {
        let mut dir = self.inner.directory.lock();
        if let Some(i) = dir.gauges.iter().position(|n| n == name) {
            return GaugeId(i);
        }
        assert!(
            dir.gauges.len() < MAX_GAUGES,
            "capi-obs: gauge capacity ({MAX_GAUGES}) exhausted registering {name:?}"
        );
        dir.gauges.push(name.to_string());
        GaugeId(dir.gauges.len() - 1)
    }

    /// Registers (or finds) a histogram by name. The kind is fixed at
    /// first registration. Panics past [`MAX_HISTOGRAMS`].
    pub fn histogram(&self, name: &str, kind: HistogramKind) -> HistogramId {
        let mut dir = self.inner.directory.lock();
        if let Some(i) = dir.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(i);
        }
        assert!(
            dir.histograms.len() < MAX_HISTOGRAMS,
            "capi-obs: histogram capacity ({MAX_HISTOGRAMS}) exhausted registering {name:?}"
        );
        dir.histograms.push((name.to_string(), kind));
        HistogramId(dir.histograms.len() - 1)
    }

    // ---- mutation (hot path) -----------------------------------------

    #[inline]
    pub(crate) fn stripe(&self, rank: u32) -> &MetricStripe {
        &self.inner.stripes[rank as usize & (STRIPES - 1)]
    }

    /// Adds `n` to a counter on `rank`'s stripe. Disabled: one relaxed
    /// load. Enabled: two relaxed RMWs on the rank's own cache lines.
    #[inline]
    pub fn add(&self, c: CounterId, rank: u32, n: u64) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        let s = self.stripe(rank);
        s.counters[c.0].fetch_add(n, Ordering::Relaxed);
        s.self_updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Stores an absolute per-stripe total into a counter slot — the
    /// fold primitive for subsystems (like the xray dispatch stripes)
    /// that already count on their own striped atomics and sync their
    /// running totals into the registry at control points. Stripe
    /// totals, not deltas: folding is idempotent.
    #[inline]
    pub fn store(&self, c: CounterId, rank: u32, total: u64) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        let s = self.stripe(rank);
        s.counters[c.0].store(total, Ordering::Relaxed);
        s.self_updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Stores a full set of absolute per-rank totals into a counter,
    /// grouping ranks onto the fixed stripe set (`rank & (STRIPES-1)`)
    /// and storing each stripe's *sum*. With more distinct ranks than
    /// stripes, plain [`Self::store`] calls would overwrite each other
    /// (last writer wins within a stripe); this fold keeps the stored
    /// values exact — `counter_value` still returns the true total.
    /// Every stripe is rewritten (including to zero), so repeated folds
    /// are idempotent like `store`.
    pub fn store_folded<I>(&self, c: CounterId, totals: I)
    where
        I: IntoIterator<Item = (u32, u64)>,
    {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut per_stripe = [0u64; STRIPES];
        for (rank, total) in totals {
            per_stripe[rank as usize & (STRIPES - 1)] += total;
        }
        for (i, &total) in per_stripe.iter().enumerate() {
            let s = &self.inner.stripes[i];
            s.counters[c.0].store(total, Ordering::Relaxed);
            s.self_updates.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one sample into a histogram on `rank`'s stripe.
    #[inline]
    pub fn observe(&self, h: HistogramId, rank: u32, value: u64) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        let s = self.stripe(rank);
        s.hist_count[h.0].fetch_add(1, Ordering::Relaxed);
        s.hist_sum[h.0].fetch_add(value, Ordering::Relaxed);
        s.hist_buckets[h.0][bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        s.self_updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Control-plane variants of [`Self::observe`]/[`Self::add`]: land
    /// on the control stripe instead of a rank stripe.
    #[inline]
    pub fn observe_control(&self, h: HistogramId, value: u64) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        let s = &self.inner.stripes[CONTROL_STRIPE];
        s.hist_count[h.0].fetch_add(1, Ordering::Relaxed);
        s.hist_sum[h.0].fetch_add(value, Ordering::Relaxed);
        s.hist_buckets[h.0][bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        s.self_updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter on the control stripe.
    #[inline]
    pub fn add_control(&self, c: CounterId, n: u64) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        let s = &self.inner.stripes[CONTROL_STRIPE];
        s.counters[c.0].fetch_add(n, Ordering::Relaxed);
        s.self_updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets a gauge (control-plane, last-writer-wins). Each set is also
    /// recorded with its logical-clock position so the Chrome trace can
    /// plot the gauge over time.
    pub fn set(&self, g: GaugeId, value: u64) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.inner.gauges[g.0].store(value, Ordering::Relaxed);
        self.inner.stripes[CONTROL_STRIPE]
            .self_updates
            .fetch_add(1, Ordering::Relaxed);
        let tick = self.inner.clock.load(Ordering::Relaxed);
        self.inner
            .spans
            .lock()
            .gauge_points
            .push((g.0, tick, value));
    }

    // ---- readback -----------------------------------------------------

    /// The merged total of a counter: sum over all stripes —
    /// deterministic for any rank interleaving, because addition
    /// commutes.
    pub fn counter_value(&self, c: CounterId) -> u64 {
        self.inner
            .stripes
            .iter()
            .map(|s| s.counters[c.0].load(Ordering::Relaxed))
            .sum()
    }

    /// The last value stored into a gauge.
    pub fn gauge_value(&self, g: GaugeId) -> u64 {
        self.inner.gauges[g.0].load(Ordering::Relaxed)
    }

    /// Merged sample count of a histogram.
    pub fn histogram_count(&self, h: HistogramId) -> u64 {
        self.inner
            .stripes
            .iter()
            .map(|s| s.hist_count[h.0].load(Ordering::Relaxed))
            .sum()
    }

    /// Merged sample sum of a histogram.
    pub fn histogram_sum(&self, h: HistogramId) -> u64 {
        self.inner
            .stripes
            .iter()
            .map(|s| s.hist_sum[h.0].load(Ordering::Relaxed))
            .sum()
    }

    /// The registry's self-accounting counters.
    pub fn self_stats(&self) -> SelfStats {
        SelfStats {
            metric_updates: self
                .inner
                .stripes
                .iter()
                .map(|s| s.self_updates.load(Ordering::Relaxed))
                .sum(),
            span_events: self.inner.span_events.load(Ordering::Relaxed),
        }
    }

    /// Measures the wall cost of one [`Self::add`] in the instance's
    /// *current* enabled state, in nanoseconds per operation, by timing
    /// `iters` updates of a scratch counter (`obs.calibration`). This
    /// is the registry measuring itself — the number `table8` multiplies
    /// against [`SelfStats::metric_updates`] to report total telemetry
    /// self-cost.
    pub fn calibrate_update_ns(&self, iters: u64) -> f64 {
        let scratch = self.counter("obs.calibration");
        let iters = iters.max(1);
        let start = std::time::Instant::now();
        for i in 0..iters {
            self.add(scratch, (i & 63) as u32, 1);
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    }
}

/// Bucket index for a histogram value: its bit length, saturated to the
/// last bucket.
#[inline]
pub(crate) fn bucket_of(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_folded_is_exact_past_the_stripe_count() {
        let t = Telemetry::new();
        let c = t.counter("folded");
        // 130 ranks with total i each: ranks 0, 64 and 128 share stripe
        // 0, yet the folded store keeps the aggregate exact — and a
        // second fold with the same totals is idempotent.
        let totals: Vec<(u32, u64)> = (0..130).map(|r| (r, u64::from(r))).collect();
        let expected: u64 = totals.iter().map(|&(_, v)| v).sum();
        t.store_folded(c, totals.iter().copied());
        assert_eq!(t.counter_value(c), expected);
        t.store_folded(c, totals.iter().copied());
        assert_eq!(t.counter_value(c), expected);
        // A plain per-rank `store` of the same totals would alias:
        // stripe 0 would hold only rank 128's value.
        for &(r, v) in &totals {
            t.store(c, r, v);
        }
        assert_ne!(t.counter_value(c), expected);
        // Folding again repairs it (idempotent overwrite of every
        // stripe, including back down to the exact sums).
        t.store_folded(c, totals.iter().copied());
        assert_eq!(t.counter_value(c), expected);
    }

    #[test]
    fn registration_is_idempotent_by_name() {
        let t = Telemetry::new();
        let a = t.counter("x");
        let b = t.counter("x");
        assert_eq!(a, b);
        assert_ne!(t.counter("y"), a);
        let h = t.histogram("h", HistogramKind::Logical);
        assert_eq!(t.histogram("h", HistogramKind::Logical), h);
    }

    #[test]
    fn counters_merge_as_sums_over_stripes() {
        let t = Telemetry::new();
        let c = t.counter("events");
        t.add(c, 0, 3);
        t.add(c, 1, 4);
        t.add(c, 64, 5); // folds onto stripe 0, still summed once
        assert_eq!(t.counter_value(c), 12);
    }

    #[test]
    fn disabled_instances_record_nothing() {
        let t = Telemetry::disabled();
        let c = t.counter("events");
        let h = t.histogram("h", HistogramKind::Logical);
        let g = t.gauge("g");
        t.add(c, 0, 3);
        t.observe(h, 0, 9);
        t.set(g, 7);
        assert_eq!(t.counter_value(c), 0);
        assert_eq!(t.histogram_count(h), 0);
        assert_eq!(t.gauge_value(g), 0);
        assert_eq!(t.self_stats().metric_updates, 0);
        // Flipping the switch re-arms the same instance.
        t.set_enabled(true);
        t.add(c, 0, 3);
        assert_eq!(t.counter_value(c), 3);
    }

    #[test]
    fn store_folds_absolute_totals_idempotently() {
        let t = Telemetry::new();
        let c = t.counter("dispatches");
        t.store(c, 0, 100);
        t.store(c, 1, 50);
        t.store(c, 0, 120); // re-fold: absolute, not additive
        assert_eq!(t.counter_value(c), 170);
    }

    #[test]
    fn histogram_buckets_are_bit_lengths() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        let t = Telemetry::new();
        let h = t.histogram("h", HistogramKind::Logical);
        for v in [0u64, 1, 3, 1024] {
            t.observe(h, 2, v);
        }
        assert_eq!(t.histogram_count(h), 4);
        assert_eq!(t.histogram_sum(h), 1028);
    }

    #[test]
    fn self_stats_count_every_mutation() {
        let t = Telemetry::new();
        let c = t.counter("c");
        let h = t.histogram("h", HistogramKind::Logical);
        let g = t.gauge("g");
        t.add(c, 0, 1);
        t.store(c, 1, 5);
        t.observe(h, 0, 2);
        t.set(g, 9);
        assert_eq!(t.self_stats().metric_updates, 4);
    }

    #[test]
    fn calibration_returns_a_finite_cost() {
        let t = Telemetry::new();
        let ns = t.calibrate_update_ns(10_000);
        assert!(ns.is_finite() && ns >= 0.0);
    }
}
