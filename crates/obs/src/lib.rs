//! Self-telemetry for the adaptation runtime itself.
//!
//! The paper's whole argument is that instrumentation overhead must be
//! *measured*, not assumed — and that has to include the meta-level:
//! the controller, the repatcher, the epoch engine and the profile IO
//! are themselves runtime machinery whose costs (`T_init`, `T_adapt`,
//! quiescence waits, publish latency) need first-class observability.
//! This crate is that substrate:
//!
//! * a **lock-free metrics registry** — counters and histograms striped
//!   per rank over cache-padded slots (merged by commutative sums, so
//!   totals are independent of rank interleaving, exactly like the
//!   event log's `(rank, seq)` merge), plus control-plane gauges;
//! * **structured spans** for the adaptation lifecycle (run → epoch →
//!   policy evaluation → repatch/RCU publish → profile load/save),
//!   timestamped with a *logical* clock so the rendering is
//!   deterministic;
//! * two **exporters**: a byte-deterministic text rendering for tests
//!   ([`Telemetry::render_text`]) and a Chrome trace-event JSON file
//!   for humans ([`Telemetry::write_chrome_trace`], wired to the
//!   `CAPI_TRACE_OUT` environment knob).
//!
//! # Overhead discipline
//!
//! The registry measures its own cost: every mutation bumps a
//! per-stripe self-accounting counter (see [`Telemetry::self_stats`])
//! and [`Telemetry::calibrate_update_ns`] times the per-operation wall
//! cost on demand. When telemetry is disabled the hot-path entry of
//! every metric operation is a **single relaxed load** and an early
//! return — cheap enough to leave the call sites in release builds.
//! Deliberately, the dispatch fast path itself never calls into this
//! crate per event: `capi-xray` keeps counting on its own stripes and
//! *folds* the totals into the registry at publish/quiescence points,
//! so enabling telemetry does not tax per-event dispatch at all (the
//! `table8` artifact proves the bound).
//!
//! # Determinism contract
//!
//! Spans and instants are control-thread operations ordered by the
//! logical clock; metric updates never touch the clock. Wall-time
//! measurements ([`SpanGuard::wall_ns`], [`HistogramKind::Wall`]
//! histograms) are quarantined: they appear in the Chrome trace for
//! humans but the text rendering shows only their deterministic parts
//! (span structure, logical ticks, sample counts) — so two identical
//! runs render byte-identical text even though their wall timings
//! differ.

#![warn(missing_docs)]

mod export;
pub mod health;
mod recorder;
mod registry;
mod span;

pub use export::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot};
pub use health::{
    pct_to_ppm, Anomaly, DetectorKind, EpochHealth, HealthConfig, HealthMonitor, HealthReport,
};
pub use recorder::{RecordKind, RecorderEntry, RecorderStats, CONTROL_RANK, DEFAULT_RECORDER_CAP};
pub use registry::{
    CounterId, GaugeId, HistogramId, HistogramKind, SelfStats, Telemetry, HIST_BUCKETS,
    MAX_COUNTERS, MAX_GAUGES, MAX_HISTOGRAMS, STRIPES,
};
pub use span::SpanGuard;

fn path_from_env(key: &str) -> Option<String> {
    match std::env::var(key) {
        Ok(p) if !p.trim().is_empty() => Some(p),
        _ => None,
    }
}

/// The output path selected by the `CAPI_TRACE_OUT` environment knob:
/// `Some(path)` when set and non-empty, `None` otherwise.
pub fn trace_out_from_env() -> Option<String> {
    path_from_env("CAPI_TRACE_OUT")
}

/// The OpenMetrics output path selected by `CAPI_METRICS_OUT`.
pub fn metrics_out_from_env() -> Option<String> {
    path_from_env("CAPI_METRICS_OUT")
}

/// The post-mortem dump output path selected by `CAPI_DUMP_OUT`.
pub fn dump_out_from_env() -> Option<String> {
    path_from_env("CAPI_DUMP_OUT")
}

/// The flight-recorder per-ring capacity selected by
/// `CAPI_RECORDER_CAP`: `Some(cap)` when set and parseable (0 disarms
/// the recorder), `None` when absent or unparsable (keep the default,
/// [`DEFAULT_RECORDER_CAP`]).
pub fn recorder_cap_from_env() -> Option<usize> {
    std::env::var("CAPI_RECORDER_CAP")
        .ok()
        .and_then(|v| v.trim().parse().ok())
}
