//! Self-telemetry for the adaptation runtime itself.
//!
//! The paper's whole argument is that instrumentation overhead must be
//! *measured*, not assumed — and that has to include the meta-level:
//! the controller, the repatcher, the epoch engine and the profile IO
//! are themselves runtime machinery whose costs (`T_init`, `T_adapt`,
//! quiescence waits, publish latency) need first-class observability.
//! This crate is that substrate:
//!
//! * a **lock-free metrics registry** — counters and histograms striped
//!   per rank over cache-padded slots (merged by commutative sums, so
//!   totals are independent of rank interleaving, exactly like the
//!   event log's `(rank, seq)` merge), plus control-plane gauges;
//! * **structured spans** for the adaptation lifecycle (run → epoch →
//!   policy evaluation → repatch/RCU publish → profile load/save),
//!   timestamped with a *logical* clock so the rendering is
//!   deterministic;
//! * two **exporters**: a byte-deterministic text rendering for tests
//!   ([`Telemetry::render_text`]) and a Chrome trace-event JSON file
//!   for humans ([`Telemetry::write_chrome_trace`], wired to the
//!   `CAPI_TRACE_OUT` environment knob).
//!
//! # Overhead discipline
//!
//! The registry measures its own cost: every mutation bumps a
//! per-stripe self-accounting counter (see [`Telemetry::self_stats`])
//! and [`Telemetry::calibrate_update_ns`] times the per-operation wall
//! cost on demand. When telemetry is disabled the hot-path entry of
//! every metric operation is a **single relaxed load** and an early
//! return — cheap enough to leave the call sites in release builds.
//! Deliberately, the dispatch fast path itself never calls into this
//! crate per event: `capi-xray` keeps counting on its own stripes and
//! *folds* the totals into the registry at publish/quiescence points,
//! so enabling telemetry does not tax per-event dispatch at all (the
//! `table8` artifact proves the bound).
//!
//! # Determinism contract
//!
//! Spans and instants are control-thread operations ordered by the
//! logical clock; metric updates never touch the clock. Wall-time
//! measurements ([`SpanGuard::wall_ns`], [`HistogramKind::Wall`]
//! histograms) are quarantined: they appear in the Chrome trace for
//! humans but the text rendering shows only their deterministic parts
//! (span structure, logical ticks, sample counts) — so two identical
//! runs render byte-identical text even though their wall timings
//! differ.

#![warn(missing_docs)]

mod export;
mod registry;
mod span;

pub use export::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot};
pub use registry::{
    CounterId, GaugeId, HistogramId, HistogramKind, SelfStats, Telemetry, HIST_BUCKETS,
    MAX_COUNTERS, MAX_GAUGES, MAX_HISTOGRAMS, STRIPES,
};
pub use span::SpanGuard;

/// The output path selected by the `CAPI_TRACE_OUT` environment knob:
/// `Some(path)` when set and non-empty, `None` otherwise.
pub fn trace_out_from_env() -> Option<String> {
    match std::env::var("CAPI_TRACE_OUT") {
        Ok(p) if !p.trim().is_empty() => Some(p),
        _ => None,
    }
}
