//! Per-epoch health monitoring: anomaly detectors over the adaptive
//! run's own telemetry.
//!
//! The adaptation loop feeds one [`EpochHealth`] observation per epoch
//! into a [`HealthMonitor`]; the monitor runs three detectors and
//! returns the [`Anomaly`]s that fired:
//!
//! * **Overhead watchdog** — measured instrumentation overhead (ppm of
//!   application time) above the configured budget for
//!   `overhead_trip_epochs` consecutive epochs. Hysteresis: after
//!   firing, the detector disarms until the overhead has been back
//!   within budget for `overhead_clear_epochs` consecutive epochs, so
//!   one sustained excursion fires exactly once.
//! * **Convergence-stall detector** — the controller neither reached
//!   its fixed point nor made any progress (published an empty delta)
//!   for `stall_epochs` consecutive epochs. Progress or convergence
//!   re-arms.
//! * **Event-volume regression detector** — on warm runs seeded from a
//!   `capi-persist` profile, an epoch whose event volume diverges from
//!   the profile-derived baseline by more than `volume_band_ppm` fires;
//!   returning into the band re-arms.
//!
//! Everything here is pure integer state driven by deterministic
//! inputs (logical overheads, event counts, controller decisions), so
//! detector firings — and the [`HealthReport`] rendering — are
//! byte-deterministic run to run.

use std::fmt::Write as _;

/// Detector thresholds. [`HealthConfig::from_env`] reads the
/// `CAPI_HEALTH_*` knobs; defaults favor firing early enough to matter
/// while tolerating one-epoch blips.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthConfig {
    /// Consecutive over-budget epochs before the overhead watchdog
    /// fires (`CAPI_HEALTH_OVERHEAD_EPOCHS`, default 2).
    pub overhead_trip_epochs: usize,
    /// Consecutive within-budget epochs that re-arm it after a firing
    /// (`CAPI_HEALTH_CLEAR_EPOCHS`, default 2).
    pub overhead_clear_epochs: usize,
    /// Consecutive no-progress, non-converged epochs before the stall
    /// detector fires (`CAPI_HEALTH_STALL_EPOCHS`, default 3).
    pub stall_epochs: usize,
    /// Allowed deviation of per-epoch event volume from the warm-start
    /// baseline, in parts per million (`CAPI_HEALTH_VOLUME_PPM`,
    /// default 250000 = ±25%).
    pub volume_band_ppm: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            overhead_trip_epochs: 2,
            overhead_clear_epochs: 2,
            stall_epochs: 3,
            volume_band_ppm: 250_000,
        }
    }
}

impl HealthConfig {
    /// The defaults overridden by any `CAPI_HEALTH_*` environment knobs
    /// that parse; unparsable or absent knobs keep the default.
    pub fn from_env() -> Self {
        fn env_num<T: std::str::FromStr>(key: &str, default: T) -> T {
            std::env::var(key)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(default)
        }
        let d = Self::default();
        Self {
            overhead_trip_epochs: env_num("CAPI_HEALTH_OVERHEAD_EPOCHS", d.overhead_trip_epochs),
            overhead_clear_epochs: env_num("CAPI_HEALTH_CLEAR_EPOCHS", d.overhead_clear_epochs),
            stall_epochs: env_num("CAPI_HEALTH_STALL_EPOCHS", d.stall_epochs),
            volume_band_ppm: env_num("CAPI_HEALTH_VOLUME_PPM", d.volume_band_ppm),
        }
    }
}

/// Converts a percentage (e.g. a budget of `5.0`%) to parts per
/// million, the integer unit every detector compares in.
pub fn pct_to_ppm(pct: f64) -> u64 {
    (pct * 10_000.0).round().max(0.0) as u64
}

/// One epoch's health observation, assembled by the adaptation loop
/// from quantities it already has.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochHealth {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Measured instrumentation overhead in ppm of application time.
    pub overhead_ppm: u64,
    /// The controller's overhead budget in ppm.
    pub budget_ppm: u64,
    /// Whether the controller published a non-empty patch delta this
    /// epoch (fixed-point progress).
    pub progressed: bool,
    /// Whether the controller considers itself converged.
    pub converged: bool,
    /// Instrumentation events observed this epoch.
    pub events: u64,
    /// Expected per-epoch event volume from a warm-start profile, when
    /// one seeded this run. `None` disables the volume detector.
    pub baseline_events: Option<u64>,
}

/// Which detector fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DetectorKind {
    /// The overhead watchdog.
    Overhead,
    /// The convergence-stall detector.
    Stall,
    /// The event-volume regression detector.
    Volume,
}

impl DetectorKind {
    /// Stable lowercase tag used in renderings and counter names.
    pub fn as_str(&self) -> &'static str {
        match self {
            DetectorKind::Overhead => "overhead",
            DetectorKind::Stall => "stall",
            DetectorKind::Volume => "volume",
        }
    }
}

/// One detector firing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Anomaly {
    /// Epoch at which the detector fired.
    pub epoch: usize,
    /// The detector.
    pub kind: DetectorKind,
    /// Deterministic description of what tripped it.
    pub detail: String,
}

/// Accumulated health over a run: firing counts per detector plus the
/// anomalies themselves, in firing order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Epochs observed.
    pub epochs_observed: usize,
    /// Overhead-watchdog firings.
    pub overhead_firings: usize,
    /// Stall-detector firings.
    pub stall_firings: usize,
    /// Volume-detector firings.
    pub volume_firings: usize,
    /// Every firing, in epoch order.
    pub anomalies: Vec<Anomaly>,
}

impl HealthReport {
    /// Total firings across all detectors.
    pub fn firings_total(&self) -> usize {
        self.overhead_firings + self.stall_firings + self.volume_firings
    }

    /// Firings of one detector.
    pub fn firings(&self, kind: DetectorKind) -> usize {
        match kind {
            DetectorKind::Overhead => self.overhead_firings,
            DetectorKind::Stall => self.stall_firings,
            DetectorKind::Volume => self.volume_firings,
        }
    }

    /// The byte-deterministic text rendering: one header line, then one
    /// line per anomaly in epoch order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# health ({} epochs observed, {} firings: overhead {}, stall {}, volume {})",
            self.epochs_observed,
            self.firings_total(),
            self.overhead_firings,
            self.stall_firings,
            self.volume_firings
        );
        for a in &self.anomalies {
            let _ = writeln!(out, "  e{} {}: {}", a.epoch, a.kind.as_str(), a.detail);
        }
        out
    }
}

/// The stateful per-run monitor: feed one [`EpochHealth`] per epoch,
/// collect firings, read the accumulated [`HealthReport`] at the end.
#[derive(Clone, Debug)]
pub struct HealthMonitor {
    config: HealthConfig,
    report: HealthReport,
    over_streak: usize,
    under_streak: usize,
    overhead_armed: bool,
    stall_streak: usize,
    stall_armed: bool,
    volume_armed: bool,
}

impl Default for HealthMonitor {
    fn default() -> Self {
        Self::new(HealthConfig::default())
    }
}

impl HealthMonitor {
    /// A monitor with the given thresholds, all detectors armed.
    pub fn new(config: HealthConfig) -> Self {
        Self {
            config,
            report: HealthReport::default(),
            over_streak: 0,
            under_streak: 0,
            overhead_armed: true,
            stall_streak: 0,
            stall_armed: true,
            volume_armed: true,
        }
    }

    /// The thresholds this monitor runs with.
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// Observes one epoch; returns the detectors that fired on it (at
    /// most one firing per detector kind per epoch).
    pub fn observe(&mut self, h: &EpochHealth) -> Vec<Anomaly> {
        self.report.epochs_observed += 1;
        let mut fired = Vec::new();

        // Overhead watchdog with hysteresis.
        if h.overhead_ppm > h.budget_ppm {
            self.over_streak += 1;
            self.under_streak = 0;
        } else {
            self.under_streak += 1;
            self.over_streak = 0;
            if !self.overhead_armed && self.under_streak >= self.config.overhead_clear_epochs {
                self.overhead_armed = true;
            }
        }
        if self.overhead_armed && self.over_streak >= self.config.overhead_trip_epochs {
            self.overhead_armed = false;
            self.report.overhead_firings += 1;
            fired.push(Anomaly {
                epoch: h.epoch,
                kind: DetectorKind::Overhead,
                detail: format!(
                    "overhead {} ppm over budget {} ppm for {} epochs",
                    h.overhead_ppm, h.budget_ppm, self.over_streak
                ),
            });
        }

        // Convergence stall: no fixed point and no progress.
        if !h.converged && !h.progressed {
            self.stall_streak += 1;
        } else {
            self.stall_streak = 0;
            self.stall_armed = true;
        }
        if self.stall_armed && self.stall_streak >= self.config.stall_epochs {
            self.stall_armed = false;
            self.report.stall_firings += 1;
            fired.push(Anomaly {
                epoch: h.epoch,
                kind: DetectorKind::Stall,
                detail: format!(
                    "no adaptation progress for {} epochs without convergence",
                    self.stall_streak
                ),
            });
        }

        // Event-volume regression vs the warm-start baseline.
        if let Some(baseline) = h.baseline_events.filter(|&b| b > 0) {
            let deviation_ppm = h.events.abs_diff(baseline).saturating_mul(1_000_000) / baseline;
            if deviation_ppm > self.config.volume_band_ppm {
                if self.volume_armed {
                    self.volume_armed = false;
                    self.report.volume_firings += 1;
                    fired.push(Anomaly {
                        epoch: h.epoch,
                        kind: DetectorKind::Volume,
                        detail: format!(
                            "event volume {} diverges from baseline {} by {} ppm (band {} ppm)",
                            h.events, baseline, deviation_ppm, self.config.volume_band_ppm
                        ),
                    });
                }
            } else {
                self.volume_armed = true;
            }
        }

        self.report.anomalies.extend(fired.iter().cloned());
        fired
    }

    /// The accumulated report so far.
    pub fn report(&self) -> &HealthReport {
        &self.report
    }

    /// Consumes the monitor, yielding its report.
    pub fn into_report(self) -> HealthReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy(epoch: usize) -> EpochHealth {
        EpochHealth {
            epoch,
            overhead_ppm: 10_000,
            budget_ppm: 50_000,
            progressed: true,
            converged: false,
            events: 1000,
            baseline_events: None,
        }
    }

    #[test]
    fn overhead_watchdog_fires_once_per_excursion_with_hysteresis() {
        let mut m = HealthMonitor::default();
        let over = |e| EpochHealth {
            overhead_ppm: 80_000,
            ..healthy(e)
        };
        assert!(m.observe(&over(0)).is_empty(), "one epoch is a blip");
        let fired = m.observe(&over(1));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, DetectorKind::Overhead);
        // Still over: disarmed, no re-fire.
        assert!(m.observe(&over(2)).is_empty());
        // One clean epoch doesn't re-arm yet...
        assert!(m.observe(&healthy(3)).is_empty());
        assert!(m.observe(&over(4)).is_empty(), "streak reset by epoch 3");
        // ...but two consecutive clean epochs do, and a fresh excursion
        // fires again.
        assert!(m.observe(&healthy(5)).is_empty());
        assert!(m.observe(&healthy(6)).is_empty());
        assert!(m.observe(&over(7)).is_empty());
        assert_eq!(m.observe(&over(8)).len(), 1);
        assert_eq!(m.report().overhead_firings, 2);
    }

    #[test]
    fn stall_detector_requires_consecutive_nonprogress_without_convergence() {
        let mut m = HealthMonitor::default();
        let stalled = |e| EpochHealth {
            progressed: false,
            ..healthy(e)
        };
        assert!(m.observe(&stalled(0)).is_empty());
        assert!(m.observe(&stalled(1)).is_empty());
        let fired = m.observe(&stalled(2));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, DetectorKind::Stall);
        // Disarmed: a longer stall does not re-fire...
        assert!(m.observe(&stalled(3)).is_empty());
        // ...until progress re-arms it.
        assert!(m.observe(&healthy(4)).is_empty());
        assert!(m.observe(&stalled(5)).is_empty());
        assert!(m.observe(&stalled(6)).is_empty());
        assert_eq!(m.observe(&stalled(7)).len(), 1);
        // A converged controller sitting at its fixed point is not a
        // stall.
        let mut c = HealthMonitor::default();
        for e in 0..6 {
            let at_fixed_point = EpochHealth {
                progressed: false,
                converged: true,
                ..healthy(e)
            };
            assert!(c.observe(&at_fixed_point).is_empty());
        }
        assert_eq!(c.report().stall_firings, 0);
    }

    #[test]
    fn volume_detector_flags_divergence_from_baseline_only() {
        let mut m = HealthMonitor::default();
        let with_volume = |e, events, baseline| EpochHealth {
            events,
            baseline_events: baseline,
            ..healthy(e)
        };
        // No baseline → detector inert regardless of volume.
        assert!(m.observe(&with_volume(0, 99_999, None)).is_empty());
        // Within ±25% of baseline 1000.
        assert!(m.observe(&with_volume(1, 1200, Some(1000))).is_empty());
        // 2x baseline: fires.
        let fired = m.observe(&with_volume(2, 2000, Some(1000)));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, DetectorKind::Volume);
        assert!(fired[0].detail.contains("1000000 ppm"));
        // Still out of band: disarmed.
        assert!(m.observe(&with_volume(3, 2000, Some(1000))).is_empty());
        // Back in band re-arms; diverging low fires again.
        assert!(m.observe(&with_volume(4, 1000, Some(1000))).is_empty());
        assert_eq!(m.observe(&with_volume(5, 100, Some(1000))).len(), 1);
        assert_eq!(m.report().volume_firings, 2);
    }

    #[test]
    fn report_renders_deterministically() {
        let mut m = HealthMonitor::new(HealthConfig {
            overhead_trip_epochs: 1,
            overhead_clear_epochs: 1,
            stall_epochs: 1,
            volume_band_ppm: 100_000,
        });
        m.observe(&EpochHealth {
            epoch: 0,
            overhead_ppm: 90_000,
            budget_ppm: 50_000,
            progressed: false,
            converged: false,
            events: 5000,
            baseline_events: Some(1000),
        });
        let report = m.into_report();
        assert_eq!(report.firings_total(), 3);
        let text = report.render();
        assert_eq!(
            text,
            "# health (1 epochs observed, 3 firings: overhead 1, stall 1, volume 1)\n  \
             e0 overhead: overhead 90000 ppm over budget 50000 ppm for 1 epochs\n  \
             e0 stall: no adaptation progress for 1 epochs without convergence\n  \
             e0 volume: event volume 5000 diverges from baseline 1000 by 4000000 ppm (band 100000 ppm)\n"
        );
    }

    #[test]
    fn pct_converts_to_ppm() {
        assert_eq!(pct_to_ppm(5.0), 50_000);
        assert_eq!(pct_to_ppm(0.5), 5_000);
        assert_eq!(pct_to_ppm(100.0), 1_000_000);
        assert_eq!(pct_to_ppm(-1.0), 0);
    }
}
