//! The end-to-end refinement workflow (paper Fig. 1 + Fig. 3).
//!
//! A [`Workflow`] owns the analysis artifacts (program → MetaCG graph →
//! compiled binary) and drives Select → Instrument → Measure → Adjust
//! iterations, accounting the *turnaround time* of each iteration in
//! both instrumentation modes. This is the quantity §VII-A argues about:
//! static instrumentation pays a full recompilation per adjustment
//! (~50 min for OpenFOAM), dynamic instrumentation pays only startup
//! patching (seconds).

use crate::ic::InstrumentationConfig;
use crate::inlining::{compensate_inlining, CompensationReport};
use crate::instrument::dynamic_session;
use crate::select::{select, SelectionOutcome};
use capi_adapt::ExpansionOptions;
use capi_appmodel::SourceProgram;
use capi_dyncapi::{AdaptiveRun, AdaptiveRunBuilder, DynCapiError, SessionRun, ToolChoice};
use capi_metacg::{whole_program_callgraph, CallGraph};
use capi_objmodel::{compile, estimate_compile_time, Binary, CompileError, CompileOptions};
use capi_persist::InstrumentationProfile;
use capi_spec::{ModuleRegistry, SpecError};
use std::time::Duration;

pub use capi_dyncapi::{profile_source_from_env, ProfileSource};

/// Result of turning a selection into an IC (with post-processing).
#[derive(Clone, Debug)]
pub struct IcOutcome {
    /// The final instrumentation configuration.
    pub ic: InstrumentationConfig,
    /// Selection timing.
    pub duration: Duration,
    /// Inlining-compensation accounting (Table I columns).
    pub compensation: CompensationReport,
}

/// Result of one measurement iteration.
#[derive(Clone, Debug)]
pub struct MeasureOutcome {
    /// The session run (T_init, T_total, events).
    pub run: SessionRun,
    /// Virtual turnaround cost of *applying* this IC dynamically
    /// (= startup/patching time; no recompilation).
    pub dynamic_turnaround_ns: u64,
    /// Virtual turnaround cost the static workflow would have paid
    /// (full recompilation + startup).
    pub static_turnaround_ns: u64,
}

/// Options for the in-flight refinement mode.
#[derive(Clone, Copy, Debug)]
pub struct InFlightOptions {
    /// Epochs the single run is divided into.
    pub epochs: usize,
    /// Target instrumentation overhead, percent of application time.
    pub budget_pct: f64,
    /// Seed for the controller's re-inclusion probing.
    pub seed: u64,
    /// TALP-driven expansion: when set, the controller also *grows*
    /// instrumentation below regions whose load balance falls under
    /// `lb_threshold` or whose communication fraction reaches
    /// `comm_threshold` — capped by the unused overhead budget, so
    /// trimming and growth reach a deterministic fixed point. `None`
    /// runs the trim-only stack.
    pub expansion: Option<ExpansionOptions>,
}

impl Default for InFlightOptions {
    fn default() -> Self {
        Self {
            epochs: 8,
            budget_pct: 5.0,
            seed: 0x5EED,
            expansion: None,
        }
    }
}

impl InFlightOptions {
    /// The equivalent [`AdaptiveRunBuilder`] — how the deprecated
    /// `measure_in_flight*` wrappers delegate to [`Workflow::adaptive_run`].
    fn builder(&self) -> AdaptiveRunBuilder {
        let mut b = AdaptiveRunBuilder::new()
            .epochs(self.epochs)
            .budget_pct(self.budget_pct)
            .seed(self.seed);
        if let Some(exp) = self.expansion {
            b = b.expansion(exp);
        }
        b
    }
}

/// Result of one in-flight refinement run: the Fig. 1 loop converging
/// inside a single session, with zero restarts and zero rebuilds.
#[derive(Clone, Debug)]
pub struct InFlightOutcome {
    /// The adaptive run (per-epoch trajectory, `T_init`/`T_adapt`).
    pub adaptive: AdaptiveRun,
    /// The IC the controller converged on (resolved names only).
    pub final_ic: InstrumentationConfig,
    /// First epoch at which the controller converged, if it did (and
    /// stayed converged — a later re-drop resets this).
    pub converged_at: Option<usize>,
    /// First epoch the controller *ever* converged at, regardless of
    /// later probe churn — the time-to-converged-IC metric warm starts
    /// improve.
    pub first_converged_at: Option<usize>,
    /// The controller's adaptation log — byte-identical across runs
    /// with the same seed and budget.
    pub log: String,
    /// Recompilations performed (always 0 in dynamic mode).
    pub rebuilds: u32,
    /// Session restarts performed (always 0 in in-flight mode).
    pub restarts: u32,
    /// The exported instrumentation profile: the converged IC in
    /// packed-ID form, drop records, cost samples, and the efficiency
    /// summary. Save it (or pass it back inline) to warm-start the next
    /// run.
    pub profile: InstrumentationProfile,
    /// Whether this run was warm-started from a prior profile.
    pub warm_started: bool,
}

/// The CaPI workflow over one application.
pub struct Workflow {
    /// The application model.
    pub program: SourceProgram,
    /// The whole-program call graph (MetaCG phase).
    pub graph: CallGraph,
    /// The compiled binary (with XRay-ready images).
    pub binary: Binary,
    /// Module registry for spec imports.
    pub modules: ModuleRegistry,
    compile_opts: CompileOptions,
}

/// Workflow errors.
#[derive(Debug)]
pub enum WorkflowError {
    /// Compilation failed.
    Compile(CompileError),
    /// Spec processing failed.
    Spec(SpecError),
    /// Instrumentation/measurement failed.
    DynCapi(DynCapiError),
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::Compile(e) => write!(f, "compile: {e}"),
            WorkflowError::Spec(e) => write!(f, "spec: {e}"),
            WorkflowError::DynCapi(e) => write!(f, "dyncapi: {e}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

impl From<CompileError> for WorkflowError {
    fn from(e: CompileError) -> Self {
        WorkflowError::Compile(e)
    }
}
impl From<SpecError> for WorkflowError {
    fn from(e: SpecError) -> Self {
        WorkflowError::Spec(e)
    }
}
impl From<DynCapiError> for WorkflowError {
    fn from(e: DynCapiError) -> Self {
        WorkflowError::DynCapi(e)
    }
}

impl Workflow {
    /// Runs the preparation phase: MetaCG call-graph construction and
    /// one (single!) compilation of the target.
    pub fn analyze(
        program: SourceProgram,
        compile_opts: CompileOptions,
    ) -> Result<Self, WorkflowError> {
        let graph = whole_program_callgraph(&program);
        let binary = compile(&program, &compile_opts)?;
        Ok(Self {
            program,
            graph,
            binary,
            modules: ModuleRegistry::with_builtins(),
            compile_opts,
        })
    }

    /// Select: runs a spec against the call graph.
    pub fn select(&self, spec_source: &str) -> Result<SelectionOutcome, WorkflowError> {
        Ok(select(spec_source, &self.graph, &self.modules)?)
    }

    /// Turns a selection into an IC, applying inlining compensation.
    /// `sample(N, …)` rate tags survive compensation: rates are
    /// re-applied to whichever tagged names remain in the compensated
    /// set (names replaced by their non-inlined callers lose the tag —
    /// the caller was never selected for sampling).
    pub fn make_ic(&self, outcome: &SelectionOutcome) -> IcOutcome {
        let (set, compensation) =
            compensate_inlining(&self.graph, &self.binary, &outcome.selection.set);
        let mut ic = InstrumentationConfig::from_selection(&self.graph, &set);
        ic.apply_rates(outcome.selection.sampled_names(&self.graph));
        IcOutcome {
            ic,
            duration: outcome.duration,
            compensation,
        }
    }

    /// One-call Select + post-process.
    pub fn select_ic(&self, spec_source: &str) -> Result<IcOutcome, WorkflowError> {
        let outcome = self.select(spec_source)?;
        Ok(self.make_ic(&outcome))
    }

    /// Instrument + Measure with the dynamic (XRay) workflow, reporting
    /// both turnaround costs for comparison.
    pub fn measure(
        &self,
        ic: &InstrumentationConfig,
        tool: ToolChoice,
        ranks: u32,
    ) -> Result<MeasureOutcome, WorkflowError> {
        let session = dynamic_session(&self.binary, ic, tool, ranks)?;
        let run = session.run().map_err(WorkflowError::DynCapi)?;
        let static_turnaround_ns =
            estimate_compile_time(&self.program, &self.compile_opts) + run.init_ns;
        Ok(MeasureOutcome {
            dynamic_turnaround_ns: run.init_ns,
            static_turnaround_ns,
            run,
        })
    }

    /// The recompilation estimate alone (what every static-mode
    /// adjustment costs before the program even starts).
    pub fn recompile_estimate_ns(&self) -> u64 {
        estimate_compile_time(&self.program, &self.compile_opts)
    }

    /// Instrument + Measure + Adjust in **one** run: the session starts
    /// from `ic`, and an epoch-based controller refines the active set
    /// live — dropping over-budget functions, probing dropped ones, and
    /// (with [`InFlightOptions::expansion`] set) growing instrumentation
    /// below load-imbalanced or communication-heavy regions — with zero
    /// restarts and zero rebuilds. Identical seeds and budgets produce
    /// byte-identical adaptation logs.
    ///
    /// This method is pure (no persistence): every call is a cold
    /// start and nothing touches disk, preserving the byte-identical
    /// determinism contract. Cross-run persistence, demotion to sampled
    /// instrumentation, and the redundancy-suppression band are all
    /// knobs on [`AdaptiveRunBuilder`] — use [`Self::adaptive_run`].
    #[deprecated(
        since = "0.6.0",
        note = "use `Workflow::adaptive_run` with an `AdaptiveRunBuilder`"
    )]
    pub fn measure_in_flight(
        &self,
        ic: &InstrumentationConfig,
        tool: ToolChoice,
        ranks: u32,
        opts: InFlightOptions,
    ) -> Result<InFlightOutcome, WorkflowError> {
        self.adaptive_run(ic, tool, ranks, &opts.builder())
    }

    /// [`Self::measure_in_flight`] with explicit cross-run persistence
    /// through a [`ProfileSource`].
    #[deprecated(
        since = "0.6.0",
        note = "use `Workflow::adaptive_run` with an `AdaptiveRunBuilder` and its `profile` knob"
    )]
    pub fn measure_in_flight_with_profile(
        &self,
        ic: &InstrumentationConfig,
        tool: ToolChoice,
        ranks: u32,
        opts: InFlightOptions,
        source: &ProfileSource,
    ) -> Result<InFlightOutcome, WorkflowError> {
        self.adaptive_run(ic, tool, ranks, &opts.builder().profile(source.clone()))
    }

    /// Instrument + Measure + Adjust in **one** run, configured by an
    /// [`AdaptiveRunBuilder`]: the session starts from `ic` (including
    /// any per-function sampling rates the IC carries), the epoch-based
    /// controller refines the active set live — dropping or *demoting to
    /// sampled* over-budget functions, probing dropped ones, growing
    /// below inefficient regions — with zero restarts and zero rebuilds.
    /// The builder's profile source drives cross-run persistence; load
    /// failures degrade to a logged cold start. Identical seeds and
    /// budgets produce byte-identical adaptation logs.
    ///
    /// The returned [`InFlightOutcome::final_ic`] carries the converged
    /// set *with* each function's final sampling rate, so it can be fed
    /// straight back into the next session.
    pub fn adaptive_run(
        &self,
        ic: &InstrumentationConfig,
        tool: ToolChoice,
        ranks: u32,
        runner: &AdaptiveRunBuilder,
    ) -> Result<InFlightOutcome, WorkflowError> {
        let mut session = dynamic_session(&self.binary, ic, tool, ranks)?;
        let out = runner.run(&mut session).map_err(WorkflowError::DynCapi)?;
        let mut final_ic =
            InstrumentationConfig::from_names(out.final_functions.iter().map(|(n, _)| n.clone()));
        final_ic.apply_rates(out.final_functions.iter().map(|(n, r)| (n.as_str(), *r)));
        Ok(InFlightOutcome {
            final_ic,
            converged_at: out.converged_at,
            first_converged_at: out.first_converged_at,
            log: out.log,
            rebuilds: 0,
            restarts: out.adaptive.restarts,
            profile: out.profile,
            warm_started: out.warm_started,
            adaptive: out.adaptive,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capi_appmodel::{LinkTarget, MpiCall, ProgramBuilder};

    fn program() -> SourceProgram {
        let mut b = ProgramBuilder::new("app");
        b.unit("m.cc", LinkTarget::Executable);
        b.function("main")
            .main()
            .statements(60)
            .instructions(300)
            .calls("MPI_Init", 1)
            .calls("step", 4)
            .calls("MPI_Finalize", 1)
            .finish();
        b.function("step")
            .statements(50)
            .instructions(400)
            .cost(500)
            .calls("kernel", 10)
            .calls("tiny", 20)
            .calls("MPI_Allreduce", 1)
            .finish();
        b.function("kernel")
            .statements(90)
            .instructions(800)
            .cost(3_000)
            .flops(200)
            .loop_depth(2)
            .finish();
        // tiny is auto-inlined: selecting it exercises compensation.
        b.function("tiny")
            .statements(2)
            .flops(32)
            .loop_depth(1)
            .cost(50)
            .finish();
        b.function("MPI_Init")
            .statements(1)
            .instructions(8)
            .cost(0)
            .mpi(MpiCall::Init)
            .finish();
        b.function("MPI_Allreduce")
            .statements(1)
            .instructions(8)
            .cost(0)
            .mpi(MpiCall::Allreduce { bytes: 16 })
            .finish();
        b.function("MPI_Finalize")
            .statements(1)
            .instructions(8)
            .cost(0)
            .mpi(MpiCall::Finalize)
            .finish();
        b.build().unwrap()
    }

    #[test]
    fn full_refinement_iteration() {
        let wf = Workflow::analyze(program(), CompileOptions::o2()).unwrap();
        // Kernels spec, like the paper's evaluation.
        let ic1 = wf
            .select_ic(r#"flops(">=", 10, loopDepth(">=", 1, %%))"#)
            .unwrap();
        // tiny was selected but is inlined: removed, caller step added.
        assert!(ic1.compensation.removed_names.contains(&"tiny".to_string()));
        assert!(ic1.ic.contains("step"));
        assert!(ic1.ic.contains("kernel"));
        assert!(!ic1.ic.contains("tiny"));

        let m1 = wf.measure(&ic1.ic, ToolChoice::None, 2).unwrap();
        assert!(m1.run.run.events > 0);

        // Adjust: drop `step` (too noisy), re-measure — no recompilation.
        let mut ic2 = ic1.ic.clone();
        ic2.remove("step");
        let m2 = wf.measure(&ic2, ToolChoice::None, 2).unwrap();
        assert!(m2.run.run.events < m1.run.run.events);

        // The headline claim: dynamic turnaround ≪ static turnaround.
        assert!(m2.dynamic_turnaround_ns * 10 < m2.static_turnaround_ns);
    }

    #[test]
    fn in_flight_refinement_converges_in_one_run() {
        let wf = Workflow::analyze(program(), CompileOptions::o2()).unwrap();
        let ic = wf
            .select_ic(r#"flops(">=", 10, loopDepth(">=", 1, %%))"#)
            .unwrap()
            .ic;
        let runner = AdaptiveRunBuilder::new().epochs(4).budget_pct(4.0).seed(11);
        let a = wf.adaptive_run(&ic, ToolChoice::None, 2, &runner).unwrap();
        let b = wf.adaptive_run(&ic, ToolChoice::None, 2, &runner).unwrap();
        assert_eq!(a.restarts, 0);
        assert_eq!(a.rebuilds, 0);
        assert_eq!(a.log, b.log, "same seed/budget → byte-identical logs");
        assert_eq!(a.adaptive.per_rank_ns, b.adaptive.per_rank_ns);
        assert!(a.final_ic.len() <= ic.len());
        let last = a.adaptive.records.last().unwrap();
        assert!(last.overhead_pct <= 4.0);
    }

    #[test]
    fn in_flight_expansion_mode_is_deterministic_and_grows() {
        let mut b = ProgramBuilder::new("skewapp");
        b.unit("m.cc", LinkTarget::Executable);
        b.function("main")
            .main()
            .statements(60)
            .instructions(300)
            .calls("MPI_Init", 1)
            .calls("phase", 8)
            .calls("MPI_Finalize", 1)
            .finish();
        b.function("phase")
            .statements(50)
            .instructions(400)
            .cost(500)
            .calls("skew_kernel", 30)
            .calls("MPI_Allreduce", 1)
            .finish();
        b.function("skew_kernel")
            .statements(90)
            .instructions(800)
            .cost(3_000)
            .imbalance(150)
            .loop_depth(2)
            .finish();
        b.function("MPI_Init")
            .statements(1)
            .instructions(8)
            .cost(0)
            .mpi(MpiCall::Init)
            .finish();
        b.function("MPI_Allreduce")
            .statements(1)
            .instructions(8)
            .cost(0)
            .mpi(MpiCall::Allreduce { bytes: 16 })
            .finish();
        b.function("MPI_Finalize")
            .statements(1)
            .instructions(8)
            .cost(0)
            .mpi(MpiCall::Finalize)
            .finish();
        let wf = Workflow::analyze(b.build().unwrap(), CompileOptions::o2()).unwrap();
        // Initial IC: the phase only — the kernel below it is excluded.
        let ic = InstrumentationConfig::from_names(["phase"]);
        let runner = AdaptiveRunBuilder::new()
            .epochs(4)
            .budget_pct(40.0)
            .seed(21)
            .expansion(ExpansionOptions::default());
        let a = wf.adaptive_run(&ic, ToolChoice::None, 2, &runner).unwrap();
        let b = wf.adaptive_run(&ic, ToolChoice::None, 2, &runner).unwrap();
        assert_eq!(a.log, b.log, "byte-identical logs with expansion");
        assert_eq!(a.adaptive.per_rank_ns, b.adaptive.per_rank_ns);
        // The skewed kernel was grown into the final IC.
        assert!(
            a.final_ic.contains("skew_kernel"),
            "expansion grew the IC: log =\n{}",
            a.log
        );
        assert!(a.log.contains("expand skew_kernel"));
        // The efficiency trajectory was aggregated.
        assert!(a.adaptive.efficiency.regions() >= 1);
    }

    #[test]
    fn in_flight_profile_round_trip_warm_starts() {
        let wf = Workflow::analyze(program(), CompileOptions::o2()).unwrap();
        let ic = wf
            .select_ic(r#"flops(">=", 10, loopDepth(">=", 1, %%))"#)
            .unwrap()
            .ic;
        let runner = AdaptiveRunBuilder::new().epochs(4).budget_pct(4.0).seed(11);
        let cold = wf.adaptive_run(&ic, ToolChoice::None, 2, &runner).unwrap();
        assert!(!cold.warm_started);
        assert!(!cold.profile.functions.is_empty());
        // Inline warm start from the cold run's exported profile.
        let warm = wf
            .adaptive_run(
                &ic,
                ToolChoice::None,
                2,
                &runner
                    .clone()
                    .profile(ProfileSource::Inline(cold.profile.clone())),
            )
            .unwrap();
        assert!(warm.warm_started);
        assert!(warm.log.contains("warm start:"));
        assert_eq!(warm.final_ic, cold.final_ic, "same converged IC");
        // Path source: a cold run writes the file, a second run warm
        // starts from it; a corrupt file degrades to a logged cold
        // start.
        let dir = std::env::temp_dir().join("capi-workflow-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.json");
        std::fs::remove_file(&path).ok();
        let pathed = runner.clone().profile(ProfileSource::Path(path.clone()));
        let first = wf.adaptive_run(&ic, ToolChoice::None, 2, &pathed).unwrap();
        assert!(!first.warm_started, "no file yet: cold");
        assert!(first.log.contains("warm start unavailable:"));
        assert!(path.exists(), "profile written back");
        let second = wf.adaptive_run(&ic, ToolChoice::None, 2, &pathed).unwrap();
        assert!(second.warm_started);
        std::fs::write(&path, "{ truncated").unwrap();
        let third = wf.adaptive_run(&ic, ToolChoice::None, 2, &pathed).unwrap();
        assert!(!third.warm_started);
        assert!(
            third
                .log
                .contains("warm start unavailable: malformed or truncated profile"),
            "fallback reason logged:\n{}",
            third.log
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sample_selector_rates_flow_into_the_ic_and_the_session() {
        let wf = Workflow::analyze(program(), CompileOptions::o2()).unwrap();
        // kernel sampled 1-in-4; step fully instrumented.
        let ic = wf
            .select_ic(r#"join(sample(4, byName("^kernel$", %%)), byName("^step$", %%))"#)
            .unwrap()
            .ic;
        assert_eq!(ic.rate_of("kernel"), 4);
        assert_eq!(ic.rate_of("step"), 1);
        use crate::ic::InstrumentationMode;
        assert_eq!(ic.mode_of("kernel"), InstrumentationMode::Sampled(4));

        // The sampled session delivers fewer events than the full one.
        let sampled = wf.measure(&ic, ToolChoice::None, 2).unwrap();
        let mut full = ic.clone();
        full.set_mode("kernel", InstrumentationMode::Full);
        let full = wf.measure(&full, ToolChoice::None, 2).unwrap();
        assert!(sampled.run.run.events < full.run.run.events);
        assert!(sampled.run.run.sampled_skips > 0);
        assert_eq!(full.run.run.sampled_skips, 0);
    }

    #[test]
    fn sample_tag_does_not_survive_inlining_replacement() {
        let wf = Workflow::analyze(program(), CompileOptions::o2()).unwrap();
        // tiny is inlined away; compensation swaps in its caller `step`,
        // which must NOT inherit tiny's sampling tag.
        let ic = wf
            .select_ic(r#"sample(8, byName("^tiny$", %%))"#)
            .unwrap()
            .ic;
        assert!(ic.contains("step"));
        assert!(!ic.contains("tiny"));
        assert_eq!(ic.rate_of("step"), 1);
        assert!(ic.sampled().next().is_none());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_the_builder_byte_for_byte() {
        let wf = Workflow::analyze(program(), CompileOptions::o2()).unwrap();
        let ic = wf
            .select_ic(r#"flops(">=", 10, loopDepth(">=", 1, %%))"#)
            .unwrap()
            .ic;
        let opts = InFlightOptions {
            epochs: 4,
            budget_pct: 4.0,
            seed: 11,
            ..Default::default()
        };
        let old = wf
            .measure_in_flight(&ic, ToolChoice::None, 2, opts)
            .unwrap();
        let runner = AdaptiveRunBuilder::new().epochs(4).budget_pct(4.0).seed(11);
        let new = wf.adaptive_run(&ic, ToolChoice::None, 2, &runner).unwrap();
        assert_eq!(old.log, new.log);
        assert_eq!(old.adaptive.per_rank_ns, new.adaptive.per_rank_ns);
        assert_eq!(old.final_ic, new.final_ic);
        let old_p = wf
            .measure_in_flight_with_profile(&ic, ToolChoice::None, 2, opts, &ProfileSource::None)
            .unwrap();
        assert_eq!(old_p.log, new.log);
    }

    #[test]
    fn talp_measurement_through_workflow() {
        let wf = Workflow::analyze(program(), CompileOptions::o2()).unwrap();
        let ic = wf.select_ic(r#"byName("^kernel$", %%)"#).unwrap();
        let m = wf
            .measure(&ic.ic, ToolChoice::Talp(Default::default()), 2)
            .unwrap();
        assert!(m.run.run.events > 0);
    }

    #[test]
    fn selection_stage_counts_exposed() {
        let wf = Workflow::analyze(program(), CompileOptions::o2()).unwrap();
        let out = wf
            .select("a = inlineSpecified(%%)\nb = inSystemHeader(%%)\njoin(%a, %b)")
            .unwrap();
        assert_eq!(out.selection.stages.len(), 3);
    }
}
