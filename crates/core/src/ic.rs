//! The instrumentation configuration (IC) artifact.
//!
//! "Subsequent to the evaluation of the whole pipeline, the resulting IC
//! is written out as a filter file that is compatible with the format
//! used by Score-P" (paper §III-A). Besides that canonical format, a
//! JSON form and a plain name list are provided, plus the paper's
//! suggested future extension (§VI-B(a)): embedding resolved function
//! IDs directly in the IC so hidden-symbol resolution can be skipped.

use capi_metacg::{CallGraph, NodeSet};
use capi_scorep::FilterFile;
use serde_json::{json, Value};
use std::collections::BTreeSet;

/// An instrumentation configuration: the set of function names to
/// instrument.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InstrumentationConfig {
    names: BTreeSet<String>,
    /// Optional packed `(object, function)` IDs, the paper's suggested
    /// future extension for hidden-symbol-proof ICs.
    ids: Vec<u32>,
}

impl InstrumentationConfig {
    /// Builds an IC from a selection over a call graph.
    pub fn from_selection(graph: &CallGraph, set: &NodeSet) -> Self {
        Self {
            names: set.iter().map(|id| graph.node(id).name.clone()).collect(),
            ids: Vec::new(),
        }
    }

    /// Builds an IC from explicit names.
    pub fn from_names<I: IntoIterator<Item = S>, S: Into<String>>(names: I) -> Self {
        Self {
            names: names.into_iter().map(Into::into).collect(),
            ids: Vec::new(),
        }
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the IC selects nothing.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }

    /// Iterates over names (sorted).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// Inserts a function.
    pub fn insert(&mut self, name: impl Into<String>) -> bool {
        self.names.insert(name.into())
    }

    /// Removes a function (the Fig. 1 "Adjust" step).
    pub fn remove(&mut self, name: &str) -> bool {
        self.names.remove(name)
    }

    /// Attaches resolved packed IDs (future-development extension).
    pub fn set_packed_ids(&mut self, ids: Vec<u32>) {
        self.ids = ids;
    }

    /// The attached packed IDs.
    pub fn packed_ids(&self) -> &[u32] {
        &self.ids
    }

    /// Renders the Score-P-compatible filter file.
    pub fn to_scorep_filter(&self) -> FilterFile {
        FilterFile::include_only(self.names())
    }

    /// Parses an IC back from a Score-P filter file (literal includes).
    pub fn from_scorep_filter(filter: &FilterFile) -> Self {
        Self::from_names(filter.literal_includes())
    }

    /// Plain text: one name per line.
    pub fn to_plain_text(&self) -> String {
        let mut out = String::new();
        for n in &self.names {
            out.push_str(n);
            out.push('\n');
        }
        out
    }

    /// Parses the plain-text form.
    pub fn from_plain_text(text: &str) -> Self {
        Self::from_names(
            text.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#')),
        )
    }

    /// JSON form (for tooling).
    pub fn to_json(&self) -> Value {
        json!({
            "version": 1,
            "functions": self.names.iter().collect::<Vec<_>>(),
            "packedIds": self.ids,
        })
    }

    /// Parses the JSON form.
    pub fn from_json(doc: &Value) -> Option<Self> {
        let names = doc
            .get("functions")?
            .as_array()?
            .iter()
            .filter_map(Value::as_str)
            .map(String::from)
            .collect();
        let ids = doc
            .get("packedIds")
            .and_then(Value::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(Value::as_u64)
                    .map(|v| v as u32)
                    .collect()
            })
            .unwrap_or_default();
        Some(Self { names, ids })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ic() -> InstrumentationConfig {
        InstrumentationConfig::from_names(["solve", "Amul", "main"])
    }

    #[test]
    fn scorep_filter_round_trip() {
        let f = ic().to_scorep_filter();
        assert!(f.is_included("solve"));
        assert!(!f.is_included("noise"));
        let back = InstrumentationConfig::from_scorep_filter(&f);
        assert_eq!(back, ic());
        // And through text.
        let f2 = FilterFile::parse(&f.to_text()).unwrap();
        assert_eq!(InstrumentationConfig::from_scorep_filter(&f2), ic());
    }

    #[test]
    fn plain_text_round_trip() {
        let text = ic().to_plain_text();
        assert_eq!(InstrumentationConfig::from_plain_text(&text), ic());
        // Comments and blanks tolerated.
        let with_noise = format!("# header\n\n{text}");
        assert_eq!(InstrumentationConfig::from_plain_text(&with_noise), ic());
    }

    #[test]
    fn json_round_trip_with_ids() {
        let mut c = ic();
        c.set_packed_ids(vec![0x0100_0007, 42]);
        let doc = c.to_json();
        let back = InstrumentationConfig::from_json(&doc).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.packed_ids(), &[0x0100_0007, 42]);
    }

    #[test]
    fn adjust_operations() {
        let mut c = ic();
        assert!(c.remove("Amul"));
        assert!(!c.contains("Amul"));
        assert!(c.insert("newKernel"));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn names_are_sorted_and_deduplicated() {
        let c = InstrumentationConfig::from_names(["b", "a", "b"]);
        assert_eq!(c.names().collect::<Vec<_>>(), vec!["a", "b"]);
    }
}
