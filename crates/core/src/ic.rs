//! The instrumentation configuration (IC) artifact.
//!
//! "Subsequent to the evaluation of the whole pipeline, the resulting IC
//! is written out as a filter file that is compatible with the format
//! used by Score-P" (paper §III-A). Besides that canonical format, a
//! JSON form and a plain name list are provided, plus the paper's
//! suggested future extension (§VI-B(a)): embedding resolved function
//! IDs directly in the IC so hidden-symbol resolution can be skipped.

use capi_metacg::{CallGraph, NodeSet};
use capi_scorep::FilterFile;
use serde_json::{json, Map, Value};
use std::collections::{BTreeMap, BTreeSet};

/// How one function is instrumented.
///
/// `Sampled(n)` keeps the sled patched but tells the dispatch fast path
/// to forward only every n-th invocation to the handler (per rank,
/// deterministic). `Sampled(1)` is byte-identical to `Full` by
/// contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstrumentationMode {
    /// Not in the IC: the sled stays dormant.
    Off,
    /// Patched, 1-in-N sampled event delivery.
    Sampled(u32),
    /// Patched, every invocation delivered.
    Full,
}

/// An instrumentation configuration: the set of function names to
/// instrument, each at a per-function [`InstrumentationMode`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InstrumentationConfig {
    names: BTreeSet<String>,
    /// Sampling rates for members running in `Sampled` mode. Only rates
    /// above 1 are stored; absence means full instrumentation.
    rates: BTreeMap<String, u32>,
    /// Optional packed `(object, function)` IDs, the paper's suggested
    /// future extension for hidden-symbol-proof ICs.
    ids: Vec<u32>,
}

impl InstrumentationConfig {
    /// Builds an IC from a selection over a call graph.
    pub fn from_selection(graph: &CallGraph, set: &NodeSet) -> Self {
        Self {
            names: set.iter().map(|id| graph.node(id).name.clone()).collect(),
            rates: BTreeMap::new(),
            ids: Vec::new(),
        }
    }

    /// Builds an IC from explicit names.
    pub fn from_names<I: IntoIterator<Item = S>, S: Into<String>>(names: I) -> Self {
        Self {
            names: names.into_iter().map(Into::into).collect(),
            rates: BTreeMap::new(),
            ids: Vec::new(),
        }
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the IC selects nothing.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }

    /// Iterates over names (sorted).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// Inserts a function (fully instrumented).
    pub fn insert(&mut self, name: impl Into<String>) -> bool {
        self.names.insert(name.into())
    }

    /// Removes a function (the Fig. 1 "Adjust" step).
    pub fn remove(&mut self, name: &str) -> bool {
        self.rates.remove(name);
        self.names.remove(name)
    }

    /// The instrumentation mode of a function: [`InstrumentationMode::Off`]
    /// for non-members, `Sampled(n)` for members with a rate above 1,
    /// `Full` otherwise.
    pub fn mode_of(&self, name: &str) -> InstrumentationMode {
        if !self.names.contains(name) {
            InstrumentationMode::Off
        } else {
            match self.rates.get(name) {
                Some(&n) => InstrumentationMode::Sampled(n),
                None => InstrumentationMode::Full,
            }
        }
    }

    /// Sets a function's instrumentation mode. `Off` removes it from the
    /// IC, `Full` and `Sampled(1)` (de)normalize to a plain member, and
    /// `Sampled(n > 1)` inserts it with the sampling rate attached.
    pub fn set_mode(&mut self, name: impl Into<String>, mode: InstrumentationMode) {
        let name = name.into();
        match mode {
            InstrumentationMode::Off => {
                self.remove(&name);
            }
            InstrumentationMode::Full => {
                self.rates.remove(&name);
                self.names.insert(name);
            }
            InstrumentationMode::Sampled(n) => {
                if n > 1 {
                    self.rates.insert(name.clone(), n);
                } else {
                    self.rates.remove(&name);
                }
                self.names.insert(name);
            }
        }
    }

    /// A member's sampling rate (1-in-N); 1 for full members and
    /// non-members alike.
    pub fn rate_of(&self, name: &str) -> u32 {
        self.rates.get(name).copied().unwrap_or(1)
    }

    /// Iterates over the sampled members (sorted) with their rates.
    pub fn sampled(&self) -> impl Iterator<Item = (&str, u32)> {
        self.rates.iter().map(|(n, &r)| (n.as_str(), r))
    }

    /// Attaches sampling rates to members by name; non-members and rates
    /// below 2 are ignored. This is how a `sample(N, …)` selection tag
    /// survives inlining compensation: the compensated IC re-applies the
    /// rates of whatever names remain.
    pub fn apply_rates<'a, I: IntoIterator<Item = (&'a str, u32)>>(&mut self, rates: I) {
        for (name, rate) in rates {
            if rate > 1 && self.names.contains(name) {
                self.rates.insert(name.to_string(), rate);
            }
        }
    }

    /// Attaches resolved packed IDs (future-development extension).
    pub fn set_packed_ids(&mut self, ids: Vec<u32>) {
        self.ids = ids;
    }

    /// The attached packed IDs.
    pub fn packed_ids(&self) -> &[u32] {
        &self.ids
    }

    /// Renders the Score-P-compatible filter file.
    pub fn to_scorep_filter(&self) -> FilterFile {
        FilterFile::include_only(self.names())
    }

    /// Parses an IC back from a Score-P filter file (literal includes).
    pub fn from_scorep_filter(filter: &FilterFile) -> Self {
        Self::from_names(filter.literal_includes())
    }

    /// Plain text: one name per line.
    pub fn to_plain_text(&self) -> String {
        let mut out = String::new();
        for n in &self.names {
            out.push_str(n);
            out.push('\n');
        }
        out
    }

    /// Parses the plain-text form.
    pub fn from_plain_text(text: &str) -> Self {
        Self::from_names(
            text.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#')),
        )
    }

    /// JSON form (for tooling). The `rates` object only appears when at
    /// least one member is sampled, so rate-free ICs render exactly as
    /// they did before the mode dimension existed.
    pub fn to_json(&self) -> Value {
        let mut doc = json!({
            "version": 1,
            "functions": self.names.iter().collect::<Vec<_>>(),
            "packedIds": self.ids,
        });
        if !self.rates.is_empty() {
            let mut rates = Map::new();
            for (n, &r) in &self.rates {
                rates.insert(n.clone(), json!(r));
            }
            if let Value::Object(map) = &mut doc {
                map.insert("rates".to_string(), Value::Object(rates));
            }
        }
        doc
    }

    /// Parses the JSON form. Documents without a `rates` key (everything
    /// written before the mode dimension) load with every member fully
    /// instrumented.
    pub fn from_json(doc: &Value) -> Option<Self> {
        let names: BTreeSet<String> = doc
            .get("functions")?
            .as_array()?
            .iter()
            .filter_map(Value::as_str)
            .map(String::from)
            .collect();
        let ids = doc
            .get("packedIds")
            .and_then(Value::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(Value::as_u64)
                    .map(|v| v as u32)
                    .collect()
            })
            .unwrap_or_default();
        let rates = doc
            .get("rates")
            .and_then(Value::as_object)
            .map(|m| {
                m.iter()
                    .filter_map(|(n, v)| {
                        v.as_u64()
                            .filter(|&r| r > 1 && r <= u64::from(u32::MAX))
                            .map(|r| (n.clone(), r as u32))
                    })
                    .filter(|(n, _)| names.contains(n))
                    .collect()
            })
            .unwrap_or_default();
        Some(Self { names, rates, ids })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ic() -> InstrumentationConfig {
        InstrumentationConfig::from_names(["solve", "Amul", "main"])
    }

    #[test]
    fn scorep_filter_round_trip() {
        let f = ic().to_scorep_filter();
        assert!(f.is_included("solve"));
        assert!(!f.is_included("noise"));
        let back = InstrumentationConfig::from_scorep_filter(&f);
        assert_eq!(back, ic());
        // And through text.
        let f2 = FilterFile::parse(&f.to_text()).unwrap();
        assert_eq!(InstrumentationConfig::from_scorep_filter(&f2), ic());
    }

    #[test]
    fn plain_text_round_trip() {
        let text = ic().to_plain_text();
        assert_eq!(InstrumentationConfig::from_plain_text(&text), ic());
        // Comments and blanks tolerated.
        let with_noise = format!("# header\n\n{text}");
        assert_eq!(InstrumentationConfig::from_plain_text(&with_noise), ic());
    }

    #[test]
    fn json_round_trip_with_ids() {
        let mut c = ic();
        c.set_packed_ids(vec![0x0100_0007, 42]);
        let doc = c.to_json();
        let back = InstrumentationConfig::from_json(&doc).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.packed_ids(), &[0x0100_0007, 42]);
    }

    #[test]
    fn adjust_operations() {
        let mut c = ic();
        assert!(c.remove("Amul"));
        assert!(!c.contains("Amul"));
        assert!(c.insert("newKernel"));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn names_are_sorted_and_deduplicated() {
        let c = InstrumentationConfig::from_names(["b", "a", "b"]);
        assert_eq!(c.names().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn mode_transitions_normalize() {
        let mut c = ic();
        assert_eq!(c.mode_of("solve"), InstrumentationMode::Full);
        assert_eq!(c.mode_of("ghost"), InstrumentationMode::Off);
        assert_eq!(c.rate_of("solve"), 1);

        c.set_mode("solve", InstrumentationMode::Sampled(8));
        assert_eq!(c.mode_of("solve"), InstrumentationMode::Sampled(8));
        assert_eq!(c.rate_of("solve"), 8);

        // Sampled(1) normalizes to Full.
        c.set_mode("solve", InstrumentationMode::Sampled(1));
        assert_eq!(c.mode_of("solve"), InstrumentationMode::Full);

        // Off drops the rate along with the membership.
        c.set_mode("Amul", InstrumentationMode::Sampled(4));
        c.set_mode("Amul", InstrumentationMode::Off);
        assert_eq!(c.mode_of("Amul"), InstrumentationMode::Off);
        c.insert("Amul");
        assert_eq!(c.mode_of("Amul"), InstrumentationMode::Full);

        // Sampled on a non-member inserts it.
        c.set_mode("fresh", InstrumentationMode::Sampled(3));
        assert!(c.contains("fresh"));
        assert_eq!(c.sampled().collect::<Vec<_>>(), vec![("fresh", 3)]);
    }

    #[test]
    fn apply_rates_ignores_non_members_and_trivial_rates() {
        let mut c = ic();
        c.apply_rates([("solve", 4), ("ghost", 8), ("Amul", 1)]);
        assert_eq!(c.rate_of("solve"), 4);
        assert_eq!(c.rate_of("Amul"), 1);
        assert!(!c.contains("ghost"));
    }

    #[test]
    fn json_round_trip_preserves_rates() {
        let mut c = ic();
        c.set_mode("solve", InstrumentationMode::Sampled(16));
        c.set_packed_ids(vec![7]);
        let doc = c.to_json();
        assert_eq!(
            doc.get("rates")
                .and_then(|r| r.get("solve"))
                .and_then(Value::as_u64),
            Some(16)
        );
        let back = InstrumentationConfig::from_json(&doc).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.mode_of("solve"), InstrumentationMode::Sampled(16));
    }

    #[test]
    fn rate_free_json_documents_still_parse() {
        // Documents written before the mode dimension carry no `rates`.
        let doc = ic().to_json();
        assert!(doc.get("rates").is_none());
        let back = InstrumentationConfig::from_json(&doc).unwrap();
        assert_eq!(back, ic());
        assert!(back.sampled().next().is_none());
    }
}
