//! The two instrumentation modes (paper Fig. 3).
//!
//! * **Static** — the pre-existing CaPI method: measurement hooks are
//!   compiled into exactly the selected functions. Changing the IC means
//!   recompiling the whole application (§VII-A: ~50 minutes for
//!   OpenFOAM).
//! * **Dynamic** — the paper's contribution: every function carries
//!   dormant XRay sleds; DynCaPI patches the selected ones at startup.
//!   Changing the IC costs seconds of patch time.

use crate::ic::InstrumentationConfig;
use capi_appmodel::SourceProgram;
use capi_dyncapi::{startup, DynCapiConfig, DynCapiError, Session, ToolChoice};
use capi_objmodel::{compile, estimate_compile_time, Binary, CompileError, CompileOptions};
use capi_xray::PassOptions;

/// A statically instrumented build.
pub struct StaticBuild {
    /// The measurement session (hooks active in all compiled-in sleds).
    pub session: Session,
    /// Virtual cost of the (re)compilation that produced this build.
    pub recompile_ns: u64,
}

/// Builds and "runs" a *statically instrumented* binary: only the IC's
/// functions receive hooks at compile time, and every hook is active.
///
/// The returned [`StaticBuild::recompile_ns`] is the virtual price paid
/// for this IC — the quantity the dynamic workflow eliminates.
pub fn static_session(
    program: &SourceProgram,
    ic: &InstrumentationConfig,
    compile_opts: &CompileOptions,
    tool: ToolChoice,
    ranks: u32,
) -> Result<StaticBuild, StaticBuildError> {
    let binary = compile(program, compile_opts)?;
    let recompile_ns = estimate_compile_time(program, compile_opts);
    // Static instrumentation = sleds only where selected; patch all.
    let pass = PassOptions {
        instruction_threshold: u32::MAX,
        ignore_loops: true,
        always_instrument: ic.names().map(String::from).collect(),
        never_instrument: Default::default(),
    };
    let config = DynCapiConfig {
        tool,
        ic: None, // everything prepared is patched
        pass,
        ranks,
        ..Default::default()
    };
    let session = startup(&binary, config)?;
    Ok(StaticBuild {
        session,
        recompile_ns,
    })
}

/// Errors from the static build path.
#[derive(Clone, Debug)]
pub enum StaticBuildError {
    /// Compilation failed.
    Compile(CompileError),
    /// DynCaPI startup failed.
    Startup(DynCapiError),
}

impl std::fmt::Display for StaticBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StaticBuildError::Compile(e) => write!(f, "compile: {e}"),
            StaticBuildError::Startup(e) => write!(f, "startup: {e}"),
        }
    }
}

impl std::error::Error for StaticBuildError {}

impl From<CompileError> for StaticBuildError {
    fn from(e: CompileError) -> Self {
        StaticBuildError::Compile(e)
    }
}

impl From<DynCapiError> for StaticBuildError {
    fn from(e: DynCapiError) -> Self {
        StaticBuildError::Startup(e)
    }
}

/// Creates a *dynamically instrumented* session from an already-compiled
/// binary: all functions carry sleds; DynCaPI patches the IC at startup.
/// No recompilation is involved — this is the paper's contribution.
pub fn dynamic_session(
    binary: &Binary,
    ic: &InstrumentationConfig,
    tool: ToolChoice,
    ranks: u32,
) -> Result<Session, DynCapiError> {
    let config = DynCapiConfig {
        tool,
        ic: Some(ic.to_scorep_filter()),
        ic_packed_ids: ic.packed_ids().to_vec(),
        ic_rates: ic.sampled().map(|(n, r)| (n.to_string(), r)).collect(),
        pass: PassOptions::instrument_all(),
        ranks,
        ..Default::default()
    };
    startup(binary, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use capi_appmodel::{LinkTarget, MpiCall, ProgramBuilder};

    fn program() -> SourceProgram {
        let mut b = ProgramBuilder::new("app");
        b.unit("m.cc", LinkTarget::Executable);
        b.function("main")
            .main()
            .statements(50)
            .instructions(300)
            .calls("MPI_Init", 1)
            .calls("kernel", 3)
            .calls("helper", 3)
            .calls("MPI_Finalize", 1)
            .finish();
        b.function("kernel")
            .statements(80)
            .instructions(600)
            .cost(5_000)
            .finish();
        b.function("helper")
            .statements(70)
            .instructions(500)
            .cost(1_000)
            .finish();
        b.function("MPI_Init")
            .statements(1)
            .instructions(8)
            .cost(0)
            .mpi(MpiCall::Init)
            .finish();
        b.function("MPI_Finalize")
            .statements(1)
            .instructions(8)
            .cost(0)
            .mpi(MpiCall::Finalize)
            .finish();
        b.build().unwrap()
    }

    #[test]
    fn static_mode_instruments_only_selected() {
        let p = program();
        let ic = InstrumentationConfig::from_names(["kernel"]);
        let build = static_session(&p, &ic, &CompileOptions::o2(), ToolChoice::None, 2).unwrap();
        assert_eq!(build.session.report.instrumented_functions, 1);
        assert_eq!(build.session.report.patched_functions, 1);
        assert!(build.recompile_ns > 0);
    }

    #[test]
    fn dynamic_mode_prepares_all_patches_selected() {
        let p = program();
        let binary = compile(&p, &CompileOptions::o2()).unwrap();
        let ic = InstrumentationConfig::from_names(["kernel"]);
        let session = dynamic_session(&binary, &ic, ToolChoice::None, 2).unwrap();
        assert!(session.report.instrumented_functions > 1);
        assert_eq!(session.report.patched_functions, 1);
    }

    #[test]
    fn both_modes_dispatch_same_events_for_same_ic() {
        let p = program();
        let ic = InstrumentationConfig::from_names(["kernel"]);
        let stat = static_session(&p, &ic, &CompileOptions::o2(), ToolChoice::None, 2).unwrap();
        let binary = compile(&p, &CompileOptions::o2()).unwrap();
        let dyn_ = dynamic_session(&binary, &ic, ToolChoice::None, 2).unwrap();
        let r1 = stat.session.run().unwrap();
        let r2 = dyn_.run().unwrap();
        assert_eq!(r1.run.events, r2.run.events);
    }
}
