//! Timed selection-pipeline execution (Table I's "Time" column).

use capi_metacg::CallGraph;
use capi_spec::{ModuleRegistry, Selection, SpecError};
use std::time::{Duration, Instant};

/// A selection run with its wall-clock duration.
#[derive(Clone, Debug)]
pub struct SelectionOutcome {
    /// The pipeline result.
    pub selection: Selection,
    /// Wall-clock duration of parsing + evaluation.
    pub duration: Duration,
}

impl SelectionOutcome {
    /// Number of selected functions.
    pub fn count(&self) -> usize {
        self.selection.set.count()
    }
}

/// Runs `spec_source` against `graph`, measuring wall time.
pub fn select(
    spec_source: &str,
    graph: &CallGraph,
    modules: &ModuleRegistry,
) -> Result<SelectionOutcome, SpecError> {
    let start = Instant::now();
    let selection = capi_spec::run_spec(spec_source, graph, modules)?;
    Ok(SelectionOutcome {
        selection,
        duration: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use capi_appmodel::{LinkTarget, ProgramBuilder};
    use capi_metacg::whole_program_callgraph;

    fn graph() -> CallGraph {
        let mut b = ProgramBuilder::new("t");
        b.unit("t.cc", LinkTarget::Executable);
        b.function("main").main().calls("k", 1).finish();
        b.function("k").flops(100).loop_depth(1).finish();
        whole_program_callgraph(&b.build().unwrap())
    }

    #[test]
    fn select_times_and_counts() {
        let g = graph();
        let out = select(
            r#"flops(">=", 10, %%)"#,
            &g,
            &ModuleRegistry::with_builtins(),
        )
        .unwrap();
        assert_eq!(out.count(), 1);
        assert!(out.duration.as_nanos() > 0);
    }

    #[test]
    fn spec_errors_propagate() {
        let g = graph();
        assert!(select("nonsense(", &g, &ModuleRegistry::with_builtins()).is_err());
    }
}
