//! # capi — Compiler-assisted Performance Instrumentation
//!
//! The paper's primary contribution, assembled from the substrate
//! crates: user-guided instrumentation selection over a whole-program
//! call graph, with **runtime-adaptable** instrumentation that applies a
//! new instrumentation configuration (IC) at program start instead of
//! recompiling.
//!
//! The high-level user workflow (paper Fig. 1):
//!
//! ```text
//!        ┌────────┐     ┌────────────┐     ┌─────────┐
//!   ────▶│ Select │────▶│ Instrument │────▶│ Measure │──┐
//!        └────────┘ IC  └────────────┘     └─────────┘  │ profile
//!             ▲                                          │
//!             └────────────── Adjust ◀───────────────────┘
//! ```
//!
//! * [`mod@select`] — run a CaPI spec (`capi-spec`) against a MetaCG
//!   graph,
//!   with wall-clock timing (Table I's first column);
//! * [`inlining`] — the §V-E inlining compensation: selected functions
//!   whose symbols vanished from the binary are replaced by their first
//!   non-inlined callers;
//! * [`ic`] — the IC artifact: Score-P-compatible filter file, JSON, or
//!   plain name list, plus the packed-ID extension the paper suggests as
//!   future development;
//! * [`instrument`] — both instrumentation modes: *static* (hooks only in
//!   selected functions, requires recompilation per adjustment) and
//!   *dynamic* (XRay sleds everywhere, DynCaPI patches the selection at
//!   startup);
//! * [`workflow`] — the refinement loop with turnaround accounting
//!   (§VII-A: ~50 min recompile per adjustment vs seconds of patching).
//!
//! The coarse selector (§V-D) lives in the DSL crate and is re-exported
//! here as [`coarse`].

pub mod ic;
pub mod inlining;
pub mod instrument;
pub mod select;
pub mod workflow;

pub use capi_adapt::ExpansionOptions;
pub use capi_dyncapi::{AdaptiveOutcome, AdaptiveRunBuilder};
pub use capi_spec::eval::{coarse, statement_aggregation};
pub use ic::{InstrumentationConfig, InstrumentationMode};
pub use inlining::{compensate_inlining, CompensationReport};
pub use instrument::{dynamic_session, static_session, StaticBuild};
pub use select::{select, SelectionOutcome};
pub use workflow::{
    profile_source_from_env, IcOutcome, InFlightOptions, InFlightOutcome, MeasureOutcome,
    ProfileSource, Workflow,
};
