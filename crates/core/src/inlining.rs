//! Inlining compensation (paper §V-E).
//!
//! XRay sleds are inserted after inlining, so inlined functions cannot
//! be patched; and the source-level call graph does not know the
//! compiler's final inlining decisions. CaPI therefore post-processes
//! the selection:
//!
//! 1. approximate the inlined set: a selected function whose symbol
//!    cannot be found in the binary or any DSO "has been inlined at all
//!    call sites" (an approximation — symbols may be retained after
//!    inlining, which is exactly what COMDAT copies do in our compiler
//!    model);
//! 2. for each such function, walk up the call graph to the first
//!    non-inlined callers and select those instead, so the inlined
//!    function's time is still recorded "under the name of the
//!    non-inlined caller".

use capi_metacg::{CallGraph, NodeId, NodeSet};
use capi_objmodel::Binary;

/// What the compensation pass did (Table I's `#selected`/`#added`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompensationReport {
    /// Selected functions before post-processing (`#selected pre`).
    pub selected_pre: usize,
    /// Selected functions after removing inlined ones (`#selected`).
    pub selected_post: usize,
    /// Functions added as replacement callers (`#added`).
    pub added: usize,
    /// The removed (inlined) function names.
    pub removed_names: Vec<String>,
    /// The added caller names.
    pub added_names: Vec<String>,
}

/// Runs inlining compensation on `selection`, returning the compensated
/// set and a report.
pub fn compensate_inlining(
    graph: &CallGraph,
    binary: &Binary,
    selection: &NodeSet,
) -> (NodeSet, CompensationReport) {
    let mut report = CompensationReport {
        selected_pre: selection.count(),
        ..Default::default()
    };
    let mut out = selection.clone();

    // Step 1: approximate the inlined set by missing symbols.
    let inlined: Vec<NodeId> = selection
        .iter()
        .filter(|&id| !binary.has_symbol(&graph.node(id).name))
        .collect();

    let mut added = graph.empty_set();
    for &node in &inlined {
        out.remove(node);
        report.removed_names.push(graph.node(node).name.clone());
        // Step 2: first available non-inlined callers, recursively.
        let mut stack: Vec<NodeId> = graph.callers(node).iter().map(|&(c, _)| c).collect();
        let mut visited = graph.empty_set();
        while let Some(caller) = stack.pop() {
            if !visited.insert(caller) {
                continue;
            }
            if binary.has_symbol(&graph.node(caller).name) {
                if !out.contains(caller) && !added.contains(caller) {
                    added.insert(caller);
                    report.added_names.push(graph.node(caller).name.clone());
                }
            } else {
                stack.extend(graph.callers(caller).iter().map(|&(c, _)| c));
            }
        }
    }
    out.union_with(&added);
    report.selected_post = report.selected_pre - report.removed_names.len();
    report.added = report.added_names.len();
    report.removed_names.sort_unstable();
    report.added_names.sort_unstable();
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use capi_appmodel::{LinkTarget, ProgramBuilder, SourceProgram};
    use capi_metacg::whole_program_callgraph;
    use capi_objmodel::{compile, CompileOptions};

    /// main → wrapper → tiny_kernel (auto-inlined into wrapper);
    /// main → chain_a (inlined) → chain_b (inlined) → big.
    fn program() -> SourceProgram {
        let mut b = ProgramBuilder::new("app");
        b.unit("m.cc", LinkTarget::Executable);
        b.function("main")
            .main()
            .statements(60)
            .calls("wrapper", 1)
            .calls("chain_a", 1)
            .finish();
        b.function("wrapper")
            .statements(50)
            .calls("tiny_kernel", 10)
            .finish();
        b.function("tiny_kernel").statements(2).flops(64).finish(); // auto-inlined
        b.function("chain_a")
            .statements(3)
            .calls("chain_b", 1)
            .finish(); // inlined
        b.function("chain_b").statements(3).calls("big", 1).finish(); // inlined
        b.function("big").statements(90).flops(256).finish();
        b.build().unwrap()
    }

    fn setup() -> (CallGraph, Binary) {
        let p = program();
        let g = whole_program_callgraph(&p);
        let bin = compile(&p, &CompileOptions::o2()).unwrap();
        (g, bin)
    }

    fn set_of(g: &CallGraph, names: &[&str]) -> NodeSet {
        let mut s = g.empty_set();
        for n in names {
            s.insert(g.node_id(n).unwrap());
        }
        s
    }

    #[test]
    fn inlined_leaf_replaced_by_caller() {
        let (g, bin) = setup();
        let sel = set_of(&g, &["tiny_kernel"]);
        let (out, report) = compensate_inlining(&g, &bin, &sel);
        assert_eq!(report.selected_pre, 1);
        assert_eq!(report.selected_post, 0);
        assert_eq!(report.added, 1);
        assert_eq!(report.added_names, vec!["wrapper"]);
        let names: Vec<&str> = out.iter().map(|i| g.node(i).name.as_str()).collect();
        assert_eq!(names, vec!["wrapper"]);
    }

    #[test]
    fn chain_of_inlined_callers_walks_to_first_surviving() {
        let (g, bin) = setup();
        // chain_b is inlined and its caller chain_a is inlined too: the
        // compensation must walk up to main.
        let sel = set_of(&g, &["chain_b"]);
        let (out, report) = compensate_inlining(&g, &bin, &sel);
        assert_eq!(report.added_names, vec!["main"]);
        assert!(out.contains(g.node_id("main").unwrap()));
        assert!(!out.contains(g.node_id("chain_b").unwrap()));
    }

    #[test]
    fn no_double_add_when_caller_already_selected() {
        let (g, bin) = setup();
        let sel = set_of(&g, &["tiny_kernel", "wrapper"]);
        let (out, report) = compensate_inlining(&g, &bin, &sel);
        assert_eq!(report.added, 0);
        assert_eq!(report.selected_post, 1);
        assert_eq!(out.count(), 1);
    }

    #[test]
    fn non_inlined_selection_is_untouched() {
        let (g, bin) = setup();
        let sel = set_of(&g, &["big", "main"]);
        let (out, report) = compensate_inlining(&g, &bin, &sel);
        assert_eq!(report.selected_pre, 2);
        assert_eq!(report.selected_post, 2);
        assert_eq!(report.added, 0);
        assert_eq!(out, sel);
    }

    #[test]
    fn table1_accounting_is_consistent() {
        let (g, bin) = setup();
        let sel = set_of(&g, &["tiny_kernel", "chain_a", "big"]);
        let (out, report) = compensate_inlining(&g, &bin, &sel);
        assert_eq!(report.selected_pre, 3);
        assert_eq!(report.selected_post, 1); // big survives
                                             // tiny_kernel → wrapper; chain_a → main.
        assert_eq!(report.added, 2);
        assert_eq!(out.count(), report.selected_post + report.added);
    }
}
