//! POP parallel-efficiency metrics.
//!
//! TALP reports a subset of the POP metrics (paper §III-B, ref \[23\]):
//! for each monitoring region, per-rank time is split into *useful*
//! computation and *MPI* communication, from which:
//!
//! * **Load Balance**      `LB  = avg(useful) / max(useful)`
//! * **Communication Eff.** `CE = max(useful) / elapsed`
//! * **Parallel Eff.**     `PE  = LB × CE = avg(useful) / elapsed`
//!
//! All three are in `[0, 1]` (property-tested), and PE factorizes exactly
//! into LB × CE — which is what lets the user tell *why* efficiency was
//! lost, not only how much time went to MPI.

/// The POP efficiency triple.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PopMetrics {
    /// `avg(useful) / max(useful)`.
    pub load_balance: f64,
    /// `max(useful) / elapsed`.
    pub communication_efficiency: f64,
    /// `avg(useful) / elapsed` (= LB × CE).
    pub parallel_efficiency: f64,
}

impl PopMetrics {
    /// Computes the metrics from per-rank useful times and the region's
    /// elapsed (wall) time. Returns all-1.0 for degenerate inputs (no
    /// ranks or zero elapsed), matching TALP's behaviour for empty
    /// regions.
    pub fn compute(useful_per_rank: &[u64], elapsed: u64) -> Self {
        if useful_per_rank.is_empty() || elapsed == 0 {
            return Self {
                load_balance: 1.0,
                communication_efficiency: 1.0,
                parallel_efficiency: 1.0,
            };
        }
        let max = useful_per_rank.iter().copied().max().unwrap_or(0);
        let sum: u128 = useful_per_rank.iter().map(|&u| u as u128).sum();
        let avg = sum as f64 / useful_per_rank.len() as f64;
        let load_balance = if max == 0 { 1.0 } else { avg / max as f64 };
        // useful time can never exceed elapsed; clamp guards rounding.
        let communication_efficiency = (max as f64 / elapsed as f64).min(1.0);
        Self {
            load_balance,
            communication_efficiency,
            parallel_efficiency: (load_balance * communication_efficiency).min(1.0),
        }
    }
}

/// Full per-region measurement summary.
#[derive(Clone, Debug)]
pub struct RegionMetrics {
    /// Region name.
    pub name: String,
    /// Number of ranks that measured the region.
    pub ranks: u32,
    /// Total number of region entries across ranks.
    pub enters: u64,
    /// Elapsed (wall) time: max over ranks of the region's open span.
    pub elapsed_ns: u64,
    /// Per-rank useful computation time.
    pub useful_per_rank: Vec<u64>,
    /// Per-rank MPI time inside the region.
    pub mpi_per_rank: Vec<u64>,
    /// The POP efficiency triple.
    pub pop: PopMetrics,
}

impl RegionMetrics {
    /// Average useful time across ranks.
    pub fn avg_useful(&self) -> f64 {
        if self.useful_per_rank.is_empty() {
            return 0.0;
        }
        self.useful_per_rank.iter().sum::<u64>() as f64 / self.useful_per_rank.len() as f64
    }

    /// Average MPI time across ranks.
    pub fn avg_mpi(&self) -> f64 {
        if self.mpi_per_rank.is_empty() {
            return 0.0;
        }
        self.mpi_per_rank.iter().sum::<u64>() as f64 / self.mpi_per_rank.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_balance_no_comm() {
        let m = PopMetrics::compute(&[100, 100, 100, 100], 100);
        assert!((m.load_balance - 1.0).abs() < 1e-12);
        assert!((m.communication_efficiency - 1.0).abs() < 1e-12);
        assert!((m.parallel_efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_lowers_lb_only() {
        // elapsed equals max useful: no communication loss.
        let m = PopMetrics::compute(&[50, 100], 100);
        assert!((m.load_balance - 0.75).abs() < 1e-12);
        assert!((m.communication_efficiency - 1.0).abs() < 1e-12);
        assert!((m.parallel_efficiency - 0.75).abs() < 1e-12);
    }

    #[test]
    fn comm_time_lowers_ce() {
        // Balanced ranks, but half the elapsed time is MPI.
        let m = PopMetrics::compute(&[100, 100], 200);
        assert!((m.load_balance - 1.0).abs() < 1e-12);
        assert!((m.communication_efficiency - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_all_ones() {
        let m = PopMetrics::compute(&[], 100);
        assert_eq!(m.parallel_efficiency, 1.0);
        let m = PopMetrics::compute(&[10, 20], 0);
        assert_eq!(m.parallel_efficiency, 1.0);
    }

    #[test]
    fn region_metrics_averages() {
        let rm = RegionMetrics {
            name: "solve".into(),
            ranks: 2,
            enters: 10,
            elapsed_ns: 100,
            useful_per_rank: vec![60, 80],
            mpi_per_rank: vec![40, 20],
            pop: PopMetrics::compute(&[60, 80], 100),
        };
        assert!((rm.avg_useful() - 70.0).abs() < 1e-12);
        assert!((rm.avg_mpi() - 30.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_metrics_bounded(
            useful in proptest::collection::vec(0u64..1_000_000, 1..16),
            extra in 0u64..1_000_000,
        ) {
            // elapsed ≥ max(useful) by construction: a rank cannot compute
            // longer than the wall time of the region.
            let elapsed = useful.iter().copied().max().unwrap_or(0) + extra;
            let m = PopMetrics::compute(&useful, elapsed);
            prop_assert!((0.0..=1.0).contains(&m.load_balance));
            prop_assert!((0.0..=1.0).contains(&m.communication_efficiency));
            prop_assert!((0.0..=1.0).contains(&m.parallel_efficiency));
            // PE factorizes.
            prop_assert!((m.parallel_efficiency - m.load_balance * m.communication_efficiency).abs() < 1e-9);
        }
    }
}
