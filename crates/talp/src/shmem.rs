//! The DLB shared-memory region table.
//!
//! DLB keeps monitoring-region handles in a fixed-size shared-memory
//! segment so external entities (job schedulers, resource managers) can
//! read metrics live. Fixed size means a bounded open-addressing hash
//! table with a probe budget: once the table gets crowded, *some* names
//! fail to insert even though free slots remain elsewhere — which is how
//! this reproduction models the paper's sporadic region-entry failures
//! at very high region counts (§VI-B(b)).

use parking_lot::RwLock;

/// Result of an insert attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Newly inserted with this handle.
    Inserted(u32),
    /// Name already present with this handle.
    Existing(u32),
    /// Probe budget exhausted or table full; the name cannot be stored.
    Failed,
}

#[derive(Clone)]
struct Slot {
    name: Box<str>,
    handle: u32,
}

/// Bounded open-addressing (linear probing) name → handle table.
pub struct ShmemRegionTable {
    slots: RwLock<Vec<Option<Slot>>>,
    capacity: usize,
    probe_limit: usize,
    next_handle: RwLock<u32>,
}

impl ShmemRegionTable {
    /// Creates a table with `capacity` slots and the given probe budget.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, probe_limit: usize) -> Self {
        assert!(capacity > 0, "region table needs capacity");
        Self {
            slots: RwLock::new(vec![None; capacity]),
            capacity,
            probe_limit: probe_limit.max(1),
            next_handle: RwLock::new(0),
        }
    }

    fn hash(&self, name: &str) -> usize {
        // FNV-1a: deterministic across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h as usize) % self.capacity
    }

    /// Inserts `name` (or finds it), returning the outcome.
    pub fn insert(&self, name: &str) -> InsertOutcome {
        let start = self.hash(name);
        let mut slots = self.slots.write();
        for i in 0..self.probe_limit {
            let idx = (start + i) % self.capacity;
            match &slots[idx] {
                Some(s) if &*s.name == name => return InsertOutcome::Existing(s.handle),
                Some(_) => continue,
                None => {
                    let mut next = self.next_handle.write();
                    let handle = *next;
                    *next += 1;
                    slots[idx] = Some(Slot {
                        name: name.into(),
                        handle,
                    });
                    return InsertOutcome::Inserted(handle);
                }
            }
        }
        InsertOutcome::Failed
    }

    /// Looks up a name without inserting.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        let start = self.hash(name);
        let slots = self.slots.read();
        for i in 0..self.probe_limit {
            let idx = (start + i) % self.capacity;
            match &slots[idx] {
                Some(s) if &*s.name == name => return Some(s.handle),
                Some(_) => continue,
                None => return None,
            }
        }
        None
    }

    /// Number of stored regions.
    pub fn len(&self) -> usize {
        self.slots.read().iter().flatten().count()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Table capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_lookup() {
        let t = ShmemRegionTable::new(64, 8);
        let h = match t.insert("solve") {
            InsertOutcome::Inserted(h) => h,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(t.lookup("solve"), Some(h));
        assert_eq!(t.insert("solve"), InsertOutcome::Existing(h));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn handles_are_unique_and_dense() {
        let t = ShmemRegionTable::new(256, 32);
        let mut handles = Vec::new();
        for i in 0..100 {
            match t.insert(&format!("region_{i}")) {
                InsertOutcome::Inserted(h) => handles.push(h),
                other => panic!("unexpected {other:?}"),
            }
        }
        let mut sorted = handles.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
    }

    #[test]
    fn crowded_table_fails_some_inserts() {
        // Capacity 128, probe budget 4: inserting 128 names must produce
        // probe failures well before the table is literally full.
        let t = ShmemRegionTable::new(128, 4);
        let mut failed = 0;
        for i in 0..128 {
            if t.insert(&format!("r{i}")) == InsertOutcome::Failed {
                failed += 1;
            }
        }
        assert!(failed > 0, "expected probe-budget failures");
        assert!(t.len() < 128);
        // Failures are deterministic: same name fails again.
        let t2 = ShmemRegionTable::new(128, 4);
        let mut failed2 = 0;
        for i in 0..128 {
            if t2.insert(&format!("r{i}")) == InsertOutcome::Failed {
                failed2 += 1;
            }
        }
        assert_eq!(failed, failed2);
    }

    #[test]
    fn lookup_respects_probe_budget() {
        let t = ShmemRegionTable::new(8, 8);
        for i in 0..6 {
            t.insert(&format!("x{i}"));
        }
        assert_eq!(t.lookup("not_there"), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = ShmemRegionTable::new(0, 4);
    }
}
