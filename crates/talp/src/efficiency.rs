//! Per-epoch efficiency aggregation for TALP-driven adaptation.
//!
//! TALP's finalize-time report ([`crate::report`]) summarizes a whole
//! run; the adaptation loop needs the same POP metrics *per epoch and
//! per region* so policies can react while the program is still
//! running. [`EfficiencyReport`] is that aggregator: the measurement
//! layer records one [`RegionEpoch`] per (epoch, region), and the
//! report answers deterministic queries — load balance, communication
//! fraction, the worst-balanced regions of an epoch — and renders a
//! byte-stable text trajectory.
//!
//! Regions are keyed by an opaque `u32` (in practice the raw packed
//! XRay ID) so this module stays independent of the instrumentation
//! crates; names ride along for display only.

use crate::metrics::PopMetrics;
use std::collections::BTreeMap;
use std::fmt::Write;

/// One region's efficiency measurements over one epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionEpoch {
    /// POP efficiency triple for this epoch.
    pub pop: PopMetrics,
    /// Fraction of the region's busy time spent in MPI:
    /// `Σ mpi / (Σ useful + Σ mpi)`, in `[0, 1]`.
    pub comm_fraction: f64,
    /// Region entries this epoch (all ranks).
    pub enters: u64,
    /// Elapsed (wall) span of the region this epoch.
    pub elapsed_ns: u64,
}

impl RegionEpoch {
    /// Computes the epoch record from per-rank useful/MPI times and the
    /// elapsed span.
    pub fn compute(
        useful_per_rank: &[u64],
        mpi_per_rank: &[u64],
        elapsed_ns: u64,
        enters: u64,
    ) -> Self {
        let useful: u128 = useful_per_rank.iter().map(|&u| u as u128).sum();
        let mpi: u128 = mpi_per_rank.iter().map(|&m| m as u128).sum();
        let busy = useful + mpi;
        Self {
            pop: PopMetrics::compute(useful_per_rank, elapsed_ns),
            comm_fraction: if busy == 0 {
                0.0
            } else {
                mpi as f64 / busy as f64
            },
            enters,
            elapsed_ns,
        }
    }
}

/// Deterministic per-epoch, per-region efficiency aggregator.
///
/// All internal maps are `BTreeMap`s, so iteration order — and with it
/// the rendered report — is byte-identical across runs given identical
/// measurements.
#[derive(Clone, Debug, Default)]
pub struct EfficiencyReport {
    /// epoch → region key → record.
    epochs: BTreeMap<usize, BTreeMap<u32, RegionEpoch>>,
    /// Region key → display name (first writer wins).
    names: BTreeMap<u32, String>,
}

impl EfficiencyReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one region's epoch measurement (see
    /// [`RegionEpoch::compute`] for building one from per-rank times).
    pub fn record(&mut self, epoch: usize, key: u32, name: &str, rec: RegionEpoch) {
        self.names.entry(key).or_insert_with(|| name.to_string());
        self.epochs.entry(epoch).or_default().insert(key, rec);
    }

    /// Number of epochs with at least one record.
    pub fn epochs(&self) -> usize {
        self.epochs.len()
    }

    /// Number of distinct regions seen.
    pub fn regions(&self) -> usize {
        self.names.len()
    }

    /// The record for one (epoch, region), if present.
    pub fn get(&self, epoch: usize, key: u32) -> Option<&RegionEpoch> {
        self.epochs.get(&epoch)?.get(&key)
    }

    /// Display name of a region key.
    pub fn name_of(&self, key: u32) -> Option<&str> {
        self.names.get(&key).map(String::as_str)
    }

    /// The most recent record per region — `(key, name, epoch, record)`
    /// ordered by key. This is the summary a cross-run instrumentation
    /// profile persists: the last observed efficiency of every region,
    /// each taken from the final epoch that saw it.
    pub fn last_per_region(&self) -> Vec<(u32, &str, usize, &RegionEpoch)> {
        let mut last: BTreeMap<u32, (usize, &RegionEpoch)> = BTreeMap::new();
        for (&epoch, regions) in &self.epochs {
            for (&key, rec) in regions {
                last.insert(key, (epoch, rec));
            }
        }
        last.into_iter()
            .map(|(key, (epoch, rec))| {
                let name = self
                    .names
                    .get(&key)
                    .map(String::as_str)
                    .unwrap_or("<unnamed>");
                (key, name, epoch, rec)
            })
            .collect()
    }

    /// Regions of an epoch ordered by ascending load balance (worst
    /// first; ties broken by key), the order the imbalance-expansion
    /// policy scans.
    pub fn worst_balanced(&self, epoch: usize) -> Vec<(u32, &RegionEpoch)> {
        let Some(regions) = self.epochs.get(&epoch) else {
            return Vec::new();
        };
        let mut out: Vec<(u32, &RegionEpoch)> = regions.iter().map(|(&k, r)| (k, r)).collect();
        out.sort_by(|a, b| {
            a.1.pop
                .load_balance
                .total_cmp(&b.1.pop.load_balance)
                .then(a.0.cmp(&b.0))
        });
        out
    }

    /// Renders the per-epoch trajectory — one block per epoch, one line
    /// per region, byte-identical across runs with identical inputs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("######## Per-Epoch Efficiency Trajectory ########\n");
        for (&epoch, regions) in &self.epochs {
            writeln!(out, "## epoch {epoch}").unwrap();
            for (key, rec) in regions {
                let name = self
                    .names
                    .get(key)
                    .map(String::as_str)
                    .unwrap_or("<unnamed>");
                writeln!(
                    out,
                    "##   {name:<24} LB {:.3}  CE {:.3}  PE {:.3}  comm {:.3}  enters {}",
                    rec.pop.load_balance,
                    rec.pop.communication_efficiency,
                    rec.pop.parallel_efficiency,
                    rec.comm_fraction,
                    rec.enters
                )
                .unwrap();
            }
        }
        out.push_str("#################################################\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_computes_pop_and_comm_fraction() {
        let mut r = EfficiencyReport::new();
        r.record(
            0,
            7,
            "solve",
            RegionEpoch::compute(&[50, 100], &[50, 0], 100, 4),
        );
        let rec = r.get(0, 7).unwrap();
        assert!((rec.pop.load_balance - 0.75).abs() < 1e-12);
        // Σmpi 50 / (Σuseful 150 + Σmpi 50)
        assert!((rec.comm_fraction - 0.25).abs() < 1e-12);
        assert_eq!(rec.enters, 4);
        assert_eq!(r.regions(), 1);
        assert_eq!(r.epochs(), 1);
        assert_eq!(r.name_of(7), Some("solve"));
    }

    #[test]
    fn zero_busy_region_has_zero_comm_fraction() {
        let rec = RegionEpoch::compute(&[0, 0], &[0, 0], 100, 1);
        assert_eq!(rec.comm_fraction, 0.0);
    }

    #[test]
    fn worst_balanced_orders_ascending_with_key_ties() {
        let mut r = EfficiencyReport::new();
        r.record(
            2,
            1,
            "balanced",
            RegionEpoch::compute(&[100, 100], &[0, 0], 100, 1),
        );
        r.record(
            2,
            2,
            "skewed",
            RegionEpoch::compute(&[10, 100], &[0, 0], 100, 1),
        );
        r.record(
            2,
            3,
            "skewed_too",
            RegionEpoch::compute(&[10, 100], &[0, 0], 100, 1),
        );
        let order: Vec<u32> = r.worst_balanced(2).iter().map(|(k, _)| *k).collect();
        assert_eq!(order, vec![2, 3, 1]);
        assert!(r.worst_balanced(9).is_empty());
    }

    #[test]
    fn last_per_region_takes_the_final_epoch_per_key() {
        let mut r = EfficiencyReport::new();
        r.record(0, 3, "a", RegionEpoch::compute(&[10, 10], &[0, 0], 10, 2));
        r.record(2, 3, "a", RegionEpoch::compute(&[10, 30], &[0, 0], 30, 4));
        r.record(1, 9, "z", RegionEpoch::compute(&[10, 20], &[5, 5], 30, 2));
        let last = r.last_per_region();
        assert_eq!(last.len(), 2);
        let (key, name, epoch, rec) = last[0];
        assert_eq!((key, name, epoch), (3, "a", 2));
        assert_eq!(rec.enters, 4, "epoch 2 record wins over epoch 0");
        assert_eq!((last[1].0, last[1].2), (9, 1));
    }

    #[test]
    fn render_is_deterministic_and_lists_every_region() {
        let build = || {
            let mut r = EfficiencyReport::new();
            // Insertion order differs from key order on purpose.
            r.record(1, 9, "z", RegionEpoch::compute(&[10, 20], &[5, 5], 30, 2));
            r.record(1, 3, "a", RegionEpoch::compute(&[10, 10], &[0, 0], 10, 2));
            r.record(0, 3, "a", RegionEpoch::compute(&[10, 10], &[0, 0], 10, 2));
            r.render()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains("epoch 0"));
        assert!(a.contains("epoch 1"));
        assert!(a.matches("LB").count() == 3);
        // Epoch blocks come in order, regions by key within the block.
        let e0 = a.find("## epoch 0").unwrap();
        let e1 = a.find("## epoch 1").unwrap();
        assert!(e0 < e1);
    }
}
