//! # capi-talp — TALP/DLB measurement substrate
//!
//! Reproduction of TALP (Tracking Application Live Performance), the
//! lightweight per-region performance monitor of the DLB library (paper
//! §III-B). Faithfully modelled behaviours:
//!
//! * **Monitoring regions** (paper Listing 2): `register`/`start`/`stop`
//!   with nesting and overlap; registration *requires MPI to be
//!   initialized* — regions entered before `MPI_Init` fail to register,
//!   the paper's §VI-B(b) observation (15 of 16,956 regions in the
//!   OpenFOAM mpi configuration).
//! * **PMPI accounting**: TALP splits each rank's time inside a region
//!   into *useful computation* and *MPI communication* by intercepting
//!   MPI calls ([`Talp`] implements `capi_mpisim::PmpiHook`).
//! * **POP efficiency metrics** (paper ref \[23\]): load balance,
//!   communication efficiency and parallel efficiency per region,
//!   queryable at runtime by the application or an external resource
//!   manager, and summarized in a text report at `MPI_Finalize`.
//! * **The fixed-capacity shared-memory region table** ([`shmem`]): DLB
//!   keeps region handles in a bounded shared-memory hash table. Under
//!   high region counts, inserts can exhaust the probe budget and fail —
//!   reproducing the paper's sporadic "entering a previously registered
//!   TALP region failed" anomaly (24 unique failures) that correlates
//!   with very large region sets.

pub mod api;
pub mod efficiency;
pub mod metrics;
pub mod report;
pub mod shmem;

pub use api::{RegionHandle, Talp, TalpConfig, TalpError, TalpStats};
pub use efficiency::{EfficiencyReport, RegionEpoch};
pub use metrics::{PopMetrics, RegionMetrics};
pub use report::render_report;
pub use shmem::ShmemRegionTable;
