//! The TALP monitoring-region API and PMPI integration.
//!
//! Mirrors the DLB interface of paper Listing 2:
//!
//! ```c
//! dlb_monitor_t* h = DLB_MonitoringRegionRegister("foo");
//! DLB_MonitoringRegionStart(h);
//! /* measured */
//! DLB_MonitoringRegionStop(h);
//! ```
//!
//! plus TALP's implicit whole-execution "Global" region and the runtime
//! query API that lets the application or an external resource manager
//! read metrics mid-run.

use crate::metrics::{PopMetrics, RegionMetrics};
use crate::shmem::{InsertOutcome, ShmemRegionTable};
use capi_mpisim::{MpiOp, PmpiHook};
use parking_lot::{Mutex, RwLock};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Opaque region handle (the `dlb_monitor_t*` equivalent).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RegionHandle(pub u32);

/// TALP errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TalpError {
    /// Region registration before `MPI_Init` (paper §VI-B(b): such
    /// regions are not recorded; "this does not constitute an error but
    /// is a limitation imposed by TALP").
    MpiNotInitialized {
        /// The offending rank.
        rank: u32,
    },
    /// The shared-memory region table rejected the name.
    RegionTableFull {
        /// The region name that could not be stored.
        name: String,
    },
    /// Unknown handle.
    UnknownHandle(RegionHandle),
    /// `stop` on a region that is not open on this rank.
    NotOpen(RegionHandle),
}

impl fmt::Display for TalpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TalpError::MpiNotInitialized { rank } => {
                write!(f, "rank {rank}: regions require MPI to be initialized")
            }
            TalpError::RegionTableFull { name } => {
                write!(f, "region table rejected `{name}`")
            }
            TalpError::UnknownHandle(h) => write!(f, "unknown region handle {h:?}"),
            TalpError::NotOpen(h) => write!(f, "region {h:?} is not open on this rank"),
        }
    }
}

impl std::error::Error for TalpError {}

/// TALP configuration.
#[derive(Clone, Debug)]
pub struct TalpConfig {
    /// Capacity of the shared-memory region table.
    pub region_table_capacity: usize,
    /// Linear-probe budget of the table.
    pub probe_limit: usize,
}

impl Default for TalpConfig {
    fn default() -> Self {
        Self {
            // Sized so that region counts in the thousands (the paper's
            // mpi IC on OpenFOAM) begin to hit probe failures — the
            // observed anomaly at high region counts.
            region_table_capacity: 8_192,
            probe_limit: 48,
        }
    }
}

/// Anomaly/bookkeeping counters (the §VI-B(b) numbers).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TalpStats {
    /// Registrations rejected because MPI was not initialized.
    pub failed_pre_mpi_init: u64,
    /// Distinct region names the shm table refused to store.
    pub unique_failed_entries: u64,
    /// Successful region registrations.
    pub registered: u64,
    /// Total region starts.
    pub starts: u64,
    /// Total region stops.
    pub stops: u64,
}

struct RankRegion {
    depth: u32,
    started_at: u64,
    mpi_while_open: u64,
    useful_total: u64,
    mpi_total: u64,
    span_total: u64,
    enters: u64,
    first_start: Option<u64>,
    last_stop: u64,
}

impl RankRegion {
    fn new() -> Self {
        Self {
            depth: 0,
            started_at: 0,
            mpi_while_open: 0,
            useful_total: 0,
            mpi_total: 0,
            span_total: 0,
            enters: 0,
            first_start: None,
            last_stop: 0,
        }
    }
}

struct Region {
    name: String,
    per_rank: Vec<Mutex<RankRegion>>,
}

struct RankState {
    open: Vec<u32>,
    mpi_entered_at: Option<u64>,
}

/// The TALP monitor.
pub struct Talp {
    size: u32,
    table: ShmemRegionTable,
    regions: RwLock<Vec<Region>>,
    rank_state: Vec<Mutex<RankState>>,
    mpi_initialized: Vec<AtomicBool>,
    failed_names: Mutex<Vec<String>>,
    stats_pre_init: AtomicU64,
    stats_registered: AtomicU64,
    stats_starts: AtomicU64,
    stats_stops: AtomicU64,
    /// Handle of the implicit whole-execution region.
    global: RwLock<Option<RegionHandle>>,
    finalized_report: Mutex<Option<Vec<RegionMetrics>>>,
    /// Virtual cost of attributing one MPI interval to one open region
    /// *beyond* the cache-resident prefix (see
    /// [`Self::attr_depth_threshold`]).
    pub attr_cost_per_region_ns: u64,
    /// Open regions up to this depth are attributed for free (their
    /// records stay cache-resident); deeper stacks pay
    /// `attr_cost_per_region_ns` per extra region per MPI call — the
    /// recurring cost that makes call-path-deep ICs expensive under TALP
    /// (Table II, openfoam mpi).
    pub attr_depth_threshold: u64,
}

impl Talp {
    /// Creates a TALP instance for `size` ranks.
    pub fn new(size: u32, config: TalpConfig) -> Self {
        Self {
            size,
            table: ShmemRegionTable::new(config.region_table_capacity, config.probe_limit),
            regions: RwLock::new(Vec::new()),
            rank_state: (0..size)
                .map(|_| {
                    Mutex::new(RankState {
                        open: Vec::new(),
                        mpi_entered_at: None,
                    })
                })
                .collect(),
            mpi_initialized: (0..size).map(|_| AtomicBool::new(false)).collect(),
            failed_names: Mutex::new(Vec::new()),
            stats_pre_init: AtomicU64::new(0),
            stats_registered: AtomicU64::new(0),
            stats_starts: AtomicU64::new(0),
            stats_stops: AtomicU64::new(0),
            global: RwLock::new(None),
            finalized_report: Mutex::new(None),
            attr_cost_per_region_ns: 1_800,
            attr_depth_threshold: 4,
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// `DLB_MonitoringRegionRegister`: registers (or finds) a region.
    pub fn region_register(&self, rank: u32, name: &str) -> Result<RegionHandle, TalpError> {
        if !self.mpi_initialized[rank as usize].load(Ordering::Acquire) {
            self.stats_pre_init.fetch_add(1, Ordering::Relaxed);
            return Err(TalpError::MpiNotInitialized { rank });
        }
        match self.table.insert(name) {
            InsertOutcome::Existing(h) => Ok(RegionHandle(h)),
            InsertOutcome::Inserted(h) => {
                let mut regions = self.regions.write();
                debug_assert_eq!(h as usize, regions.len(), "handles are dense");
                regions.push(Region {
                    name: name.to_string(),
                    per_rank: (0..self.size)
                        .map(|_| Mutex::new(RankRegion::new()))
                        .collect(),
                });
                self.stats_registered.fetch_add(1, Ordering::Relaxed);
                Ok(RegionHandle(h))
            }
            InsertOutcome::Failed => {
                let mut failed = self.failed_names.lock();
                if !failed.iter().any(|n| n == name) {
                    failed.push(name.to_string());
                }
                Err(TalpError::RegionTableFull {
                    name: name.to_string(),
                })
            }
        }
    }

    /// `DLB_MonitoringRegionStart`.
    pub fn region_start(
        &self,
        rank: u32,
        handle: RegionHandle,
        clock: u64,
    ) -> Result<(), TalpError> {
        let regions = self.regions.read();
        let region = regions
            .get(handle.0 as usize)
            .ok_or(TalpError::UnknownHandle(handle))?;
        let mut rr = region.per_rank[rank as usize].lock();
        rr.enters += 1;
        rr.depth += 1;
        if rr.depth == 1 {
            rr.started_at = clock;
            rr.mpi_while_open = 0;
            if rr.first_start.is_none() {
                rr.first_start = Some(clock);
            }
        }
        drop(rr);
        self.rank_state[rank as usize].lock().open.push(handle.0);
        self.stats_starts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// `DLB_MonitoringRegionStop`.
    pub fn region_stop(
        &self,
        rank: u32,
        handle: RegionHandle,
        clock: u64,
    ) -> Result<(), TalpError> {
        let regions = self.regions.read();
        let region = regions
            .get(handle.0 as usize)
            .ok_or(TalpError::UnknownHandle(handle))?;
        let mut rr = region.per_rank[rank as usize].lock();
        if rr.depth == 0 {
            return Err(TalpError::NotOpen(handle));
        }
        rr.depth -= 1;
        if rr.depth == 0 {
            let span = clock.saturating_sub(rr.started_at);
            let mpi = rr.mpi_while_open.min(span);
            rr.span_total += span;
            rr.mpi_total += mpi;
            rr.useful_total += span - mpi;
            rr.last_stop = rr.last_stop.max(clock);
        }
        drop(rr);
        let mut st = self.rank_state[rank as usize].lock();
        if let Some(pos) = st.open.iter().rposition(|&h| h == handle.0) {
            st.open.remove(pos);
        }
        self.stats_stops.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Runtime query (`DLB_TALP_*`): metrics for one region, computable
    /// mid-run (open intervals are excluded).
    pub fn query(&self, handle: RegionHandle) -> Result<RegionMetrics, TalpError> {
        let regions = self.regions.read();
        let region = regions
            .get(handle.0 as usize)
            .ok_or(TalpError::UnknownHandle(handle))?;
        Ok(Self::metrics_of(region))
    }

    fn metrics_of(region: &Region) -> RegionMetrics {
        let mut useful = Vec::with_capacity(region.per_rank.len());
        let mut mpi = Vec::with_capacity(region.per_rank.len());
        let mut enters = 0;
        let mut elapsed = 0u64;
        for rr in &region.per_rank {
            let rr = rr.lock();
            useful.push(rr.useful_total);
            mpi.push(rr.mpi_total);
            enters += rr.enters;
            if let Some(first) = rr.first_start {
                elapsed = elapsed.max(rr.last_stop.saturating_sub(first));
            }
        }
        let pop = PopMetrics::compute(&useful, elapsed);
        RegionMetrics {
            name: region.name.clone(),
            ranks: region.per_rank.len() as u32,
            enters,
            elapsed_ns: elapsed,
            useful_per_rank: useful,
            mpi_per_rank: mpi,
            pop,
        }
    }

    /// Metrics for all registered regions (Global first).
    pub fn all_metrics(&self) -> Vec<RegionMetrics> {
        self.regions.read().iter().map(Self::metrics_of).collect()
    }

    /// The report computed at `MPI_Finalize`, if the run finished.
    pub fn final_report(&self) -> Option<Vec<RegionMetrics>> {
        self.finalized_report.lock().clone()
    }

    /// Anomaly counters.
    pub fn stats(&self) -> TalpStats {
        TalpStats {
            failed_pre_mpi_init: self.stats_pre_init.load(Ordering::Relaxed),
            unique_failed_entries: self.failed_names.lock().len() as u64,
            registered: self.stats_registered.load(Ordering::Relaxed),
            starts: self.stats_starts.load(Ordering::Relaxed),
            stops: self.stats_stops.load(Ordering::Relaxed),
        }
    }

    /// Names the region table refused to store.
    pub fn failed_region_names(&self) -> Vec<String> {
        self.failed_names.lock().clone()
    }

    /// Whether MPI is initialized on `rank` (TALP tracks this via PMPI).
    pub fn mpi_ready(&self, rank: u32) -> bool {
        self.mpi_initialized[rank as usize].load(Ordering::Acquire)
    }
}

impl PmpiHook for Talp {
    fn pre_mpi(&self, rank: u32, _op: &MpiOp, clock: u64) {
        self.rank_state[rank as usize].lock().mpi_entered_at = Some(clock);
    }

    fn post_mpi(&self, rank: u32, _op: &MpiOp, clock: u64) -> u64 {
        let mut st = self.rank_state[rank as usize].lock();
        let Some(entered) = st.mpi_entered_at.take() else {
            return 0;
        };
        let spent = clock.saturating_sub(entered);
        if spent == 0 || st.open.is_empty() {
            return 0;
        }
        let open = st.open.clone();
        drop(st);
        let regions = self.regions.read();
        let mut counted = Vec::with_capacity(open.len());
        for h in open {
            // A region may be nested multiple times; attribute once.
            if counted.contains(&h) {
                continue;
            }
            counted.push(h);
            if let Some(region) = regions.get(h as usize) {
                region.per_rank[rank as usize].lock().mpi_while_open += spent;
            }
        }
        // Bookkeeping: the first few open-region records stay cache
        // resident and are effectively free; each one beyond that is a
        // scattered record to update on every single MPI call — the
        // recurring cost that makes call-path-deep ICs expensive under
        // TALP (the openfoam-mpi pathology of Table II).
        let n = counted.len() as u64;
        self.attr_cost_per_region_ns * n.saturating_sub(self.attr_depth_threshold)
    }

    fn on_init(&self, rank: u32, clock: u64) {
        self.mpi_initialized[rank as usize].store(true, Ordering::Release);
        // Open the implicit Global region.
        let handle = {
            let existing = *self.global.read();
            match existing {
                Some(h) => h,
                None => {
                    let h = self
                        .region_register(rank, "Global")
                        .expect("global region fits in a fresh table");
                    *self.global.write() = Some(h);
                    h
                }
            }
        };
        let _ = self.region_start(rank, handle, clock);
    }

    fn on_finalize(&self, rank: u32, clock: u64) {
        // Close everything still open on this rank (Global included).
        let open: Vec<u32> = {
            let st = self.rank_state[rank as usize].lock();
            st.open.clone()
        };
        for h in open.into_iter().rev() {
            let _ = self.region_stop(rank, RegionHandle(h), clock);
        }
        // Last rank to finalize snapshots the report.
        let mut report = self.finalized_report.lock();
        *report = Some(self.all_metrics());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn talp(ranks: u32) -> Talp {
        let t = Talp::new(ranks, TalpConfig::default());
        for r in 0..ranks {
            t.on_init(r, 0);
        }
        t
    }

    #[test]
    fn register_requires_mpi_init() {
        let t = Talp::new(2, TalpConfig::default());
        let err = t.region_register(0, "foo").unwrap_err();
        assert_eq!(err, TalpError::MpiNotInitialized { rank: 0 });
        assert_eq!(t.stats().failed_pre_mpi_init, 1);
        t.on_init(0, 0);
        assert!(t.region_register(0, "foo").is_ok());
    }

    #[test]
    fn start_stop_accumulates_useful_time() {
        let t = talp(1);
        let h = t.region_register(0, "solve").unwrap();
        t.region_start(0, h, 1_000).unwrap();
        t.region_stop(0, h, 4_000).unwrap();
        let m = t.query(h).unwrap();
        assert_eq!(m.useful_per_rank[0], 3_000);
        assert_eq!(m.mpi_per_rank[0], 0);
        assert_eq!(m.enters, 1);
    }

    #[test]
    fn mpi_time_attributed_to_open_regions() {
        let t = talp(1);
        let h = t.region_register(0, "solve").unwrap();
        t.region_start(0, h, 0).unwrap();
        t.pre_mpi(0, &MpiOp::Barrier, 100);
        t.post_mpi(0, &MpiOp::Barrier, 400);
        t.region_stop(0, h, 1_000).unwrap();
        let m = t.query(h).unwrap();
        assert_eq!(m.mpi_per_rank[0], 300);
        assert_eq!(m.useful_per_rank[0], 700);
    }

    #[test]
    fn mpi_outside_region_not_attributed() {
        let t = talp(1);
        let h = t.region_register(0, "solve").unwrap();
        t.pre_mpi(0, &MpiOp::Barrier, 100);
        t.post_mpi(0, &MpiOp::Barrier, 400);
        t.region_start(0, h, 500).unwrap();
        t.region_stop(0, h, 900).unwrap();
        let m = t.query(h).unwrap();
        assert_eq!(m.mpi_per_rank[0], 0);
        assert_eq!(m.useful_per_rank[0], 400);
    }

    #[test]
    fn nested_entries_count_once_for_time() {
        let t = talp(1);
        let h = t.region_register(0, "outer").unwrap();
        t.region_start(0, h, 0).unwrap();
        t.region_start(0, h, 100).unwrap(); // nested same region
        t.region_stop(0, h, 200).unwrap();
        t.region_stop(0, h, 1_000).unwrap();
        let m = t.query(h).unwrap();
        assert_eq!(m.enters, 2);
        assert_eq!(m.useful_per_rank[0], 1_000); // outermost span only
    }

    #[test]
    fn overlapping_regions_both_charged() {
        let t = talp(1);
        let a = t.region_register(0, "a").unwrap();
        let b = t.region_register(0, "b").unwrap();
        t.region_start(0, a, 0).unwrap();
        t.region_start(0, b, 100).unwrap();
        t.pre_mpi(0, &MpiOp::Barrier, 200);
        t.post_mpi(0, &MpiOp::Barrier, 300);
        t.region_stop(0, a, 400).unwrap();
        t.region_stop(0, b, 500).unwrap();
        assert_eq!(t.query(a).unwrap().mpi_per_rank[0], 100);
        assert_eq!(t.query(b).unwrap().mpi_per_rank[0], 100);
    }

    #[test]
    fn stop_without_start_errors() {
        let t = talp(1);
        let h = t.region_register(0, "x").unwrap();
        assert_eq!(t.region_stop(0, h, 10), Err(TalpError::NotOpen(h)));
        assert!(matches!(
            t.region_stop(0, RegionHandle(99), 10),
            Err(TalpError::UnknownHandle(_))
        ));
    }

    #[test]
    fn global_region_opens_at_init_and_closes_at_finalize() {
        let t = talp(2);
        t.pre_mpi(0, &MpiOp::Barrier, 500);
        t.post_mpi(0, &MpiOp::Barrier, 800);
        t.on_finalize(0, 10_000);
        t.on_finalize(1, 10_000);
        let report = t.final_report().unwrap();
        let global = report.iter().find(|m| m.name == "Global").unwrap();
        assert_eq!(global.elapsed_ns, 10_000);
        assert_eq!(global.mpi_per_rank[0], 300);
        assert_eq!(global.mpi_per_rank[1], 0);
    }

    #[test]
    fn load_imbalance_shows_in_pop_metrics() {
        let t = talp(2);
        let h = t.region_register(0, "kernel").unwrap();
        // Rank 0 computes 1000, rank 1 computes 500 then waits in MPI 500.
        t.region_start(0, h, 0).unwrap();
        t.region_stop(0, h, 1_000).unwrap();
        t.region_start(1, h, 0).unwrap();
        t.pre_mpi(1, &MpiOp::Barrier, 500);
        t.post_mpi(1, &MpiOp::Barrier, 1_000);
        t.region_stop(1, h, 1_000).unwrap();
        let m = t.query(h).unwrap();
        assert_eq!(m.useful_per_rank, vec![1_000, 500]);
        assert!((m.pop.load_balance - 0.75).abs() < 1e-9);
        assert!((m.pop.communication_efficiency - 1.0).abs() < 1e-9);
    }

    #[test]
    fn crowded_table_produces_unique_failed_entries() {
        let cfg = TalpConfig {
            region_table_capacity: 64,
            probe_limit: 4,
        };
        let t = Talp::new(1, cfg);
        t.on_init(0, 0);
        let mut failures = 0;
        for i in 0..64 {
            if t.region_register(0, &format!("region_{i}")).is_err() {
                failures += 1;
            }
        }
        assert!(failures > 0);
        assert_eq!(t.stats().unique_failed_entries, failures);
        // Re-registering a failed name does not double-count uniqueness.
        let name = t.failed_region_names()[0].clone();
        let before = t.stats().unique_failed_entries;
        let _ = t.region_register(0, &name);
        assert_eq!(t.stats().unique_failed_entries, before);
    }
}
