//! TALP's text-based summary report.
//!
//! "TALP outputs a text-based summary of the parallel efficiency metrics
//! of each monitoring region at the end of the execution" (paper
//! §III-B). The paper also observes (§VII-B) that for thousands of
//! regions the flat text report becomes hard to digest — reproduced
//! faithfully: the report is one block per region, optionally truncated
//! with an explicit "… and N more regions" line so harnesses can show
//! the effect without drowning the terminal.

use crate::metrics::RegionMetrics;
use std::fmt::Write;

fn fmt_time(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Renders the finalize-time report. `max_regions = None` prints all.
pub fn render_report(metrics: &[RegionMetrics], max_regions: Option<usize>) -> String {
    let mut out = String::new();
    out.push_str("######### Monitoring Regions Summary #########\n");
    let shown = max_regions.unwrap_or(metrics.len()).min(metrics.len());
    for m in &metrics[..shown] {
        writeln!(out, "### Name:                     {}", m.name).unwrap();
        writeln!(
            out,
            "###   Elapsed Time:           {}",
            fmt_time(m.elapsed_ns)
        )
        .unwrap();
        writeln!(out, "###   MPI Ranks:              {}", m.ranks).unwrap();
        writeln!(out, "###   Region Entries:         {}", m.enters).unwrap();
        writeln!(
            out,
            "###   Useful Time (avg):      {}",
            fmt_time(m.avg_useful() as u64)
        )
        .unwrap();
        writeln!(
            out,
            "###   MPI Time (avg):         {}",
            fmt_time(m.avg_mpi() as u64)
        )
        .unwrap();
        writeln!(
            out,
            "###   Parallel Efficiency:    {:.3}",
            m.pop.parallel_efficiency
        )
        .unwrap();
        writeln!(
            out,
            "###     Communication Eff.:   {:.3}",
            m.pop.communication_efficiency
        )
        .unwrap();
        writeln!(
            out,
            "###     Load Balance:         {:.3}",
            m.pop.load_balance
        )
        .unwrap();
        out.push_str("###\n");
    }
    if shown < metrics.len() {
        writeln!(out, "### … and {} more regions", metrics.len() - shown).unwrap();
    }
    out.push_str("##############################################\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PopMetrics;

    fn region(name: &str) -> RegionMetrics {
        RegionMetrics {
            name: name.into(),
            ranks: 2,
            enters: 4,
            elapsed_ns: 2_500_000_000,
            useful_per_rank: vec![2_000_000_000, 1_500_000_000],
            mpi_per_rank: vec![500_000_000, 1_000_000_000],
            pop: PopMetrics::compute(&[2_000_000_000, 1_500_000_000], 2_500_000_000),
        }
    }

    #[test]
    fn report_contains_all_metric_lines() {
        let r = render_report(&[region("Global")], None);
        assert!(r.contains("Name:                     Global"));
        assert!(r.contains("Elapsed Time:           2.500 s"));
        assert!(r.contains("Parallel Efficiency"));
        assert!(r.contains("Load Balance"));
        assert!(r.contains("Communication Eff."));
    }

    #[test]
    fn truncation_reports_hidden_count() {
        let regions: Vec<RegionMetrics> = (0..10).map(|i| region(&format!("r{i}"))).collect();
        let r = render_report(&regions, Some(3));
        assert!(r.contains("… and 7 more regions"));
        assert_eq!(r.matches("### Name:").count(), 3);
    }

    #[test]
    fn time_units_scale() {
        assert_eq!(fmt_time(500), "500 ns");
        assert_eq!(fmt_time(2_500), "2.500 µs");
        assert_eq!(fmt_time(2_500_000), "2.500 ms");
        assert_eq!(fmt_time(2_500_000_000), "2.500 s");
    }
}
