//! Offline shim for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names (trait and derive-macro
//! namespaces, like the real crate) so `use serde::{Deserialize,
//! Serialize}` and `#[derive(Serialize, Deserialize)]` compile. The
//! workspace never serializes through these traits — all JSON flows
//! through `serde_json::Value` — so they carry no methods.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
