//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements just enough of criterion's API surface for this
//! workspace's benches to compile and run without network access: a
//! [`Criterion`] driver, benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a small fixed number
//! of timed iterations and prints a mean — no sampling statistics, no
//! HTML reports, no saved baselines.

use std::fmt;
use std::time::Instant;

/// Opaque value barrier: prevents the optimizer from deleting a
/// benchmarked computation whose result is otherwise unused.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim times the routine
/// per batch regardless; the variants exist for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup dominates; one input per call).
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A parameterized benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an identifier from a function name and a parameter value.
    pub fn new<P: fmt::Display>(function_id: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_id}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Per-benchmark measurement driver handed to the bench closure.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let total = start.elapsed();
        let mean = total / u32::try_from(self.iters.max(1)).unwrap_or(u32::MAX);
        println!("    {} iters, mean {:?}", self.iters, mean);
    }

    /// Times `routine` over freshly set-up inputs, excluding the setup
    /// closure from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = std::time::Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        let mean = total / u32::try_from(self.iters.max(1)).unwrap_or(u32::MAX);
        println!("    {} iters, mean {:?}", self.iters, mean);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    iters: u64,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count. The shim maps it to the per-bench
    /// iteration count (clamped to keep offline runs quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).clamp(1, 20);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("  {}/{id}", self.name);
        let mut b = Bencher { iters: self.iters };
        f(&mut b);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("  {}/{id}", self.name);
        let mut b = Bencher { iters: self.iters };
        f(&mut b, input);
        self
    }

    /// Ends the group (a no-op in the shim; criterion emits summaries).
    pub fn finish(&mut self) {}
}

/// The benchmark driver: registry entry point handed to each
/// `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            iters: 10,
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function list, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
