//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()`, `read()` and `write()` return guards directly, and a
//! poisoned std lock (a panic while held) is transparently recovered,
//! matching parking_lot's no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

fn recover<G>(result: Result<G, sync::PoisonError<G>>) -> G {
    result.unwrap_or_else(sync::PoisonError::into_inner)
}

/// Mutual-exclusion lock; `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can
/// temporarily take ownership (std's wait consumes the guard).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(recover(self.inner.lock())),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Condition variable compatible with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present before wait");
        guard.inner = Some(recover(self.inner.wait(std_guard)));
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: recover(self.inner.read()),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: recover(self.inner.write()),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_and_condvar_rendezvous() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while *g < 3 {
                cv.wait(&mut g);
            }
            *g
        });
        for _ in 0..3 {
            let (m, cv) = &*pair;
            *m.lock() += 1;
            cv.notify_all();
        }
        assert_eq!(t.join().unwrap(), 3);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
