//! Offline shim for the `bytes` crate.
//!
//! Implements the subset the workspace uses: [`BytesMut`] as a growable
//! byte buffer with an advance cursor, the [`Buf`] reader trait for
//! `&[u8]` and [`BytesMut`], and the [`BufMut`] writer trait. Multi-byte
//! integers use big-endian order, matching the real crate's `get_*` /
//! `put_*` defaults.

use std::ops::{Deref, DerefMut};

/// Read access to a cursor-advancing byte buffer.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// A view of the remaining bytes.
    fn chunk(&self) -> &[u8];

    /// Discards the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte and advances.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u32` and advances.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64` and advances.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }
}

/// A growable byte buffer that supports consuming from the front.
///
/// Backed by a `Vec<u8>` plus a read offset; [`Buf::advance`] moves the
/// offset and the storage is compacted once more than half the backing
/// vector is dead space, keeping amortized costs linear like the real
/// crate's ring-buffer behaviour.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    head: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
            head: 0,
        }
    }

    /// Readable bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// Whether no readable bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all contents.
    pub fn clear(&mut self) {
        self.data.clear();
        self.head = 0;
    }

    fn compact(&mut self) {
        if self.head > self.data.len() / 2 {
            self.data.drain(..self.head);
            self.head = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.head..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.head..]
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of BytesMut");
        self.head += cnt;
        self.compact();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_advance() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(0xdead_beef);
        b.put_u8(7);
        b.put_u64(42);
        assert_eq!(b.len(), 13);
        let mut view = &b[..];
        assert_eq!(view.get_u32(), 0xdead_beef);
        assert_eq!(view.get_u8(), 7);
        assert_eq!(view.get_u64(), 42);
        assert!(view.is_empty());
        b.advance(5);
        assert_eq!(b.len(), 8);
        let mut view = &b[..];
        assert_eq!(view.get_u64(), 42);
    }

    #[test]
    fn compaction_keeps_contents() {
        let mut b = BytesMut::new();
        for i in 0..100u8 {
            b.put_u8(i);
        }
        b.advance(90);
        assert_eq!(b.len(), 10);
        assert_eq!(b[0], 90);
        b.put_u8(200);
        assert_eq!(b[10], 200);
    }
}
