//! Offline shim for `serde_derive`.
//!
//! The workspace builds without registry access, so the real derive
//! macros are replaced by no-ops: they accept the same syntax (including
//! `#[serde(...)]` helper attributes) and emit no code. Nothing in the
//! workspace invokes serde's trait machinery through generics — JSON
//! handling goes through `serde_json::Value` directly — so empty
//! expansions are sufficient.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
