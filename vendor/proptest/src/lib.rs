//! Offline shim for `proptest`.
//!
//! A deterministic property-testing mini-harness: the [`proptest!`]
//! macro runs each property over `ProptestConfig::cases` inputs drawn
//! from [`Strategy`] values seeded by the test name and case index.
//! There is no shrinking — a failing case panics with the standard
//! assertion message, and reruns are reproducible because generation is
//! fully deterministic.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Everything a property test normally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic generator state (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name and case index, so every case of every
    /// property draws an independent, reproducible stream.
    pub fn deterministic(name: &str, case: u64) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            state: seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A source of generated values.
///
/// The real crate's strategies produce shrinkable value *trees*; this
/// shim generates plain values directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical full-range strategy, via [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` over its whole value space.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty)*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = u64::from(self.end - self.start);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = u64::from(hi - lo) + 1; // no overflow: span of u32-or-smaller fits
                lo + rng.below(span) as $t
            }
        }
    )*};
}

arbitrary_uint!(u8 u16 u32);

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.abs_diff(self.start);
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl Strategy for Range<i32> {
    type Value = i32;

    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty range strategy");
        let span = u64::from(self.end.abs_diff(self.start));
        self.start.wrapping_add(rng.below(span) as i32)
    }
}

/// String strategies are regex patterns, as in the real crate.
///
/// Supported syntax is the subset used by this workspace's properties:
/// character classes (`[a-z0-9_]`, with ranges and literal members),
/// `.` (printable ASCII), `\d`/`\w`/`\s`, escaped literals (`\.`),
/// literal characters, and the repetitions `{n}`, `{m,n}`, `?`, `*`,
/// `+` (the unbounded forms are capped at 8). Unsupported escape
/// classes panic rather than silently generating literals.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let class: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .expect("unterminated character class")
                        + i;
                    let mut members = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j], chars[j + 2]);
                            members.extend(lo..=hi);
                            j += 3;
                        } else {
                            members.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    members
                }
                '.' => {
                    i += 1;
                    (' '..='~').collect()
                }
                '\\' => {
                    let escaped = *chars.get(i + 1).expect("trailing backslash in pattern");
                    i += 2;
                    match escaped {
                        'd' => ('0'..='9').collect(),
                        'w' => ('a'..='z')
                            .chain('A'..='Z')
                            .chain('0'..='9')
                            .chain(['_'])
                            .collect(),
                        's' => vec![' ', '\t', '\n'],
                        c if c.is_ascii_alphanumeric() => {
                            panic!("unsupported escape class \\{c} in pattern")
                        }
                        c => vec![c],
                    }
                }
                literal => {
                    i += 1;
                    vec![literal]
                }
            };
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated repetition")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.parse().expect("bad repetition bound"),
                            hi.parse().expect("bad repetition bound"),
                        ),
                        None => {
                            let n: usize = body.parse().expect("bad repetition count");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            assert!(!class.is_empty(), "empty character class");
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
        out
    }
}

macro_rules! strategy_tuple {
    ($($name:ident)+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

strategy_tuple!(A);
strategy_tuple!(A B);
strategy_tuple!(A B C);
strategy_tuple!(A B C D);

/// Runs properties over generated inputs.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::TestRng::deterministic(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::proptest_tests! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)+) => { assert!($($tt)+) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)+) => { assert_eq!($($tt)+) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)+) => { assert_ne!($($tt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u32..20), &mut rng);
            assert!((10..20).contains(&v));
            let w = Strategy::generate(&(0u8..=255), &mut rng);
            let _ = w; // full range: any value is valid
        }
    }

    #[test]
    fn regex_escape_classes_generate_members() {
        let mut rng = crate::TestRng::deterministic("escapes", 0);
        for _ in 0..200 {
            let s = Strategy::generate(&r"\d{3}", &mut rng);
            assert_eq!(s.len(), 3);
            assert!(s.chars().all(|c| c.is_ascii_digit()), "non-digit in {s}");
            let w = Strategy::generate(&r"\w{4}\.", &mut rng);
            assert!(w.ends_with('.'));
            assert!(w[..4]
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn determinism_across_reruns() {
        let mut a = crate::TestRng::deterministic("same", 7);
        let mut b = crate::TestRng::deterministic("same", 7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_round_trip(x in 1u32..100, y in any::<u64>()) {
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(y, y);
        }
    }
}
