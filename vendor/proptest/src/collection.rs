//! Collection strategies.

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Allowed lengths for a generated collection.
#[derive(Clone, Debug)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        Self {
            start: len,
            end: len + 1,
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.start < self.size.end, "empty size range");
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_in_range() {
        let strategy = vec(0u32..10, 2..5);
        let mut rng = TestRng::deterministic("vec", 0);
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
