//! Compact and pretty JSON writers.

use crate::value::Value;
use std::fmt::Write;

/// Serializes with no whitespace.
pub fn compact(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Serializes with newlines and two-space indentation.
pub fn pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
