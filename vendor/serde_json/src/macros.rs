//! The `json!` construction macro (tt-muncher, like the real crate).

/// Builds a [`Value`](crate::Value) from JSON-like syntax.
///
/// Supports nested object and array literals, `null`/`true`/`false`,
/// and arbitrary Rust expressions in value position (converted through
/// [`ToJsonValue`](crate::ToJsonValue), by reference — expressions are
/// not moved).
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Implementation detail of [`json!`].
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    //////////// array element muncher: (@array [built elems] rest...) ////////////
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };

    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null),] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true),] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false),] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($nested:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($nested)*]),] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($nested:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($nested)*}),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last),])
    };
    (@array [$($elems:expr,)*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////// object entry muncher: (@object map (key toks) (rest) (copy)) ////////////
    (@object $map:ident () () ()) => {};

    // Insert the current key/value pair, then continue after a comma.
    (@object $map:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $map.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $map () ($($rest)*) ($($rest)*));
    };
    // Insert the final key/value pair.
    (@object $map:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $map.insert(($($key)+).into(), $value);
    };

    // Value is a literal keyword, array or object.
    (@object $map:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $map:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $map:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $map:ident ($($key:tt)+) (: [$($arr:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::json_internal!([$($arr)*])) $($rest)*);
    };
    (@object $map:ident ($($key:tt)+) (: {$($obj:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::json_internal!({$($obj)*})) $($rest)*);
    };
    // Value is a general expression followed by more entries.
    (@object $map:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    // Value is the final expression.
    (@object $map:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::json_internal!($value)));
    };
    // Accumulate the next token into the key.
    (@object $map:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map ($($key)* $tt) ($($rest)*) $copy);
    };

    //////////// entry points ////////////
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {{
        let mut map = $crate::Map::new();
        $crate::json_internal!(@object map () ($($tt)+) ($($tt)+));
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        // `to_value` is infallible for every `ToJsonValue` implementor.
        $crate::to_value(&$other).unwrap()
    };
}
