//! Offline shim for `serde_json`.
//!
//! Unlike the other vendored shims this is a *working* JSON library —
//! the workspace round-trips MetaCG documents and IC artifacts through
//! text — just trimmed to the `Value`-centric subset used here: the
//! [`Value`] tree, a strict parser ([`from_str`]), compact and pretty
//! printers, the [`json!`] macro, and conversion via [`ToJsonValue`]
//! instead of serde's `Serialize`.

mod macros;
mod parse;
mod print;
mod value;

pub use parse::{from_str, Error};
pub use value::{Map, Number, ToJsonValue, Value};

/// Converts a value into a [`Value`] tree.
///
/// Mirrors `serde_json::to_value`, with [`ToJsonValue`] standing in for
/// `Serialize`. Infallible for every implementor in this shim; the
/// `Result` is kept for call-site compatibility.
pub fn to_value<T: ToJsonValue + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Serializes to a compact JSON string.
pub fn to_string<T: ToJsonValue + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::compact(&value.to_json_value()))
}

/// Serializes to a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: ToJsonValue + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::pretty(&value.to_json_value()))
}
