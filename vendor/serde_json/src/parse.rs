//! A strict recursive-descent JSON parser.

use crate::value::{Map, Number, Value};
use std::fmt;

/// Parse failure with byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
    position: usize,
}

impl Error {
    fn new(message: impl Into<String>, position: usize) -> Self {
        Self {
            message: message.into(),
            position,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl std::error::Error for Error {}

/// Parses a complete JSON document.
///
/// Trailing non-whitespace input is an error, as in the real crate.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}`", byte as char), self.pos))
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::new(
                format!("unexpected character `{}`", other as char),
                self.pos,
            )),
            None => Err(Error::new("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(Error::new("expected `,` or `]`", self.pos - 1)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(Error::new("expected `,` or `}`", self.pos - 1)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::new("unterminated string", self.pos)),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    _ => return Err(Error::new("invalid escape", self.pos - 1)),
                },
                Some(b) if b < 0x20 => {
                    return Err(Error::new("control character in string", self.pos - 1))
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| Error::new("invalid UTF-8 in string", start))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let first = self.hex4()?;
        // Surrogate pairs encode astral-plane characters.
        let code = if (0xd800..0xdc00).contains(&first) {
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(Error::new("unpaired surrogate", self.pos));
            }
            let second = self.hex4()?;
            if !(0xdc00..0xe000).contains(&second) {
                return Err(Error::new("invalid low surrogate", self.pos));
            }
            0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| Error::new("invalid unicode escape", self.pos))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(Error::new("invalid hex digit", self.pos - 1)),
            };
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        let number = if is_float {
            text.parse::<f64>().ok().map(Number::Float)
        } else if text.starts_with('-') {
            text.parse::<i64>().ok().map(Number::NegInt)
        } else {
            text.parse::<u64>().ok().map(Number::PosInt)
        };
        number
            .map(Value::Number)
            .ok_or_else(|| Error::new("invalid number", start))
    }
}
