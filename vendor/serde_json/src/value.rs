//! The JSON value tree and conversions into it.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A finite float.
    Float(f64),
}

impl Number {
    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }

    /// The value as `f64` (lossy for large integers).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(n) => Some(n as f64),
            Number::NegInt(n) => Some(n as f64),
            Number::Float(n) => Some(n),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            // Keep a decimal point on integral floats so the text form
            // parses back as a float, like the real crate does.
            Number::Float(n) if n.fract() == 0.0 && n.is_finite() && n.abs() < 1e15 => {
                write!(f, "{n:.1}")
            }
            // Unreachable through `ToJsonValue` (non-finite maps to
            // null there); a hand-built non-finite Number still must
            // not serialize as `NaN`/`inf`, which no parser accepts.
            Number::Float(n) if !n.is_finite() => f.write_str("null"),
            Number::Float(n) => write!(f, "{n}"),
        }
    }
}

/// An order-preserving string-keyed map.
///
/// The real crate defaults to `BTreeMap` storage; so does this shim, so
/// object keys serialize in sorted order and text round-trips are
/// deterministic. The type parameters exist for name compatibility with
/// `serde_json::Map<String, Value>`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map<K = String, V = Value>
where
    K: Ord,
{
    entries: BTreeMap<K, V>,
}

impl<K: Ord, V> Map<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self {
            entries: BTreeMap::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a key-value pair, returning any previous value.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.entries.insert(key, value)
    }

    /// Removes a key, returning its value if present.
    pub fn remove<Q: Ord + ?Sized>(&mut self, key: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
    {
        self.entries.remove(key)
    }

    /// Looks up a key.
    pub fn get<Q: Ord + ?Sized>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
    {
        self.entries.get(key)
    }

    /// Whether a key is present.
    pub fn contains_key<Q: Ord + ?Sized>(&self, key: &Q) -> bool
    where
        K: std::borrow::Borrow<Q>,
    {
        self.entries.contains_key(key)
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> std::collections::btree_map::Iter<'_, K, V> {
        self.entries.iter()
    }

    /// Iterates keys in order.
    pub fn keys(&self) -> std::collections::btree_map::Keys<'_, K, V> {
        self.entries.keys()
    }

    /// Iterates values in key order.
    pub fn values(&self) -> std::collections::btree_map::Values<'_, K, V> {
        self.entries.values()
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a Map<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::collections::btree_map::Iter<'a, K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl<K: Ord, V> IntoIterator for Map<K, V> {
    type Item = (K, V);
    type IntoIter = std::collections::btree_map::IntoIter<K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        Self {
            entries: iter.into_iter().collect(),
        }
    }
}

/// A JSON document node.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A string-keyed object.
    Object(Map<String, Value>),
}

impl Value {
    /// Member access: key lookup on objects, index on arrays.
    ///
    /// Returns `None` for any other receiver (including `Null`), so
    /// chained `.get(..).and_then(..)` probes never panic.
    pub fn get<I: Index>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The entry map, if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Replaces this value with `Null`, returning the old value.
    pub fn take(&mut self) -> Value {
        std::mem::take(self)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::print::compact(self))
    }
}

/// Valid argument types for [`Value::get`].
pub trait Index {
    /// Looks `self` up inside `v`.
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
}

impl Index for str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object().and_then(|m| m.get(self))
    }
}

impl Index for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(v)
    }
}

impl Index for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_array().and_then(|a| a.get(*self))
    }
}

impl<T: Index + ?Sized> Index for &T {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        (**self).index_into(v)
    }
}

/// Conversion into a [`Value`], standing in for `Serialize` in this
/// shim's `to_value`/`to_string` entry points and the [`json!`] macro.
///
/// [`json!`]: crate::json!
pub trait ToJsonValue {
    /// Builds the value tree.
    fn to_json_value(&self) -> Value;
}

impl ToJsonValue for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJsonValue + ?Sized> ToJsonValue for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl ToJsonValue for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl ToJsonValue for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJsonValue for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! to_value_unsigned {
    ($($t:ty)*) => {$(
        impl ToJsonValue for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::PosInt(u64::from(*self)))
            }
        }
    )*};
}

to_value_unsigned!(u8 u16 u32 u64);

macro_rules! to_value_signed {
    ($($t:ty)*) => {$(
        impl ToJsonValue for $t {
            fn to_json_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n))
                }
            }
        }
    )*};
}

to_value_signed!(i8 i16 i32 i64);

impl ToJsonValue for usize {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::PosInt(*self as u64))
    }
}

impl ToJsonValue for isize {
    fn to_json_value(&self) -> Value {
        (*self as i64).to_json_value()
    }
}

impl ToJsonValue for f64 {
    fn to_json_value(&self) -> Value {
        // JSON cannot represent non-finite numbers; the real crate's
        // `to_value` maps them to null.
        if self.is_finite() {
            Value::Number(Number::Float(*self))
        } else {
            Value::Null
        }
    }
}

impl ToJsonValue for f32 {
    fn to_json_value(&self) -> Value {
        f64::from(*self).to_json_value()
    }
}

impl<T: ToJsonValue> ToJsonValue for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJsonValue::to_json_value).collect())
    }
}

impl<T: ToJsonValue> ToJsonValue for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJsonValue::to_json_value).collect())
    }
}

impl<T: ToJsonValue> ToJsonValue for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl ToJsonValue for Map<String, Value> {
    fn to_json_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Self {
        Value::Array(a)
    }
}

impl From<Map<String, Value>> for Value {
    fn from(m: Map<String, Value>) -> Self {
        Value::Object(m)
    }
}
