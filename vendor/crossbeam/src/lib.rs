//! Offline shim for `crossbeam`.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`.
//! The workspace keeps each receiver behind a mutex (single consumer),
//! so std's channel semantics match what the real crate would provide.

pub mod channel {
    //! Multi-producer channels with the crossbeam naming scheme.

    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_clones() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1u64).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        }
    }
}
