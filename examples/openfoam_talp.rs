//! Coarse TALP region instrumentation of the synthetic OpenFOAM solver —
//! the paper's headline use case (§V-D, §VII-B): pick out the major
//! hotspots of a large modular application as TALP monitoring regions
//! while keeping the report digestible.
//!
//! ```text
//! cargo run --release --example openfoam_talp
//! ```

use capi::Workflow;
use capi_dyncapi::ToolChoice;
use capi_objmodel::CompileOptions;
use capi_talp::render_report;
use capi_workloads::{openfoam, OpenFoamParams, PAPER_SPECS};

fn main() {
    let program = openfoam(&OpenFoamParams {
        scale: 20_000,
        ..Default::default()
    });
    let workflow = Workflow::analyze(program, CompileOptions::o2()).expect("analyze");
    println!(
        "icoFoam model: {} call-graph nodes, {} DSOs",
        workflow.graph.len(),
        workflow.binary.dsos.len()
    );

    // `mpi coarse`: MPI call paths, thinned by the coarse selector.
    let ic = workflow
        .select_ic(PAPER_SPECS[1].source)
        .expect("mpi coarse IC");
    println!(
        "mpi-coarse IC: {} pre → {} post, +{} compensated ({:?})",
        ic.compensation.selected_pre,
        ic.compensation.selected_post,
        ic.compensation.added,
        ic.duration
    );

    let session = capi::dynamic_session(
        &workflow.binary,
        &ic.ic,
        ToolChoice::Talp(Default::default()),
        8,
    )
    .expect("session");
    println!(
        "patching: {} of {} instrumented functions, {} unresolvable hidden symbols",
        session.report.patched_functions,
        session.report.instrumented_functions,
        session.report.symres.unresolved_hidden
    );
    session.run().expect("run");

    // §VI-B measurement observations.
    let stats = session.talp_adapter.as_ref().expect("talp").stats();
    println!(
        "TALP: {} regions registered, {} failed pre-MPI_Init, {} refused by the region table",
        stats.regions_registered, stats.regions_failed_pre_init, stats.regions_failed_table
    );

    // The coarse region report — readable, unlike a full profile.
    let mut report = session
        .talp
        .as_ref()
        .expect("talp configured")
        .final_report()
        .expect("finalize ran");
    report.sort_by_key(|m| std::cmp::Reverse(m.elapsed_ns));
    println!("{}", render_report(&report, Some(8)));
}
