//! The wait-free dispatch fast path + sharded sinks, end to end.
//!
//! Four rank threads dispatch instrumentation events into a per-rank
//! [`ShardedLog`] while a controller thread repatches the very sleds
//! they execute. Demonstrates the three guarantees the hot-path rework
//! provides:
//!
//! 1. no lost events — every dispatched event lands in the sink,
//! 2. deterministic merge — the trace is identical across runs, in
//!    (rank, per-rank sequence) order, regardless of interleaving,
//! 3. stale tolerance — sleds unpatched after the engine's snapshot are
//!    delivered (and counted) instead of faulting.
//!
//! Run with `cargo run --release --example dispatch_fastpath`.

use capi::{dynamic_session, Workflow};
use capi_dyncapi::ToolChoice;
use capi_exec::{Engine, OverheadModel};
use capi_mpisim::{CostModel, World};
use capi_objmodel::CompileOptions;
use capi_workloads::quickstart_app;
use capi_xray::{Event, PatchDelta, ShardedLog};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn run_once(ranks: u32) -> (u64, u64, Vec<Event>) {
    let program = quickstart_app(50);
    let wf = Workflow::analyze(program, CompileOptions::o2()).expect("analyzes");
    let ic = wf
        .select_ic(r#"byName("^(stencil_kernel|compute_residual|time_step)$", %%)"#)
        .expect("selects")
        .ic;
    let mut session = dynamic_session(&wf.binary, &ic, ToolChoice::None, ranks).expect("starts");
    let runtime = session.runtime.clone();
    let toggled = runtime.patched_ids();
    let sink = Arc::new(ShardedLog::new(ranks));
    runtime.set_handler(sink.clone());

    let engine =
        Engine::prepare(&session.process, &runtime, OverheadModel::default()).expect("prepares");
    let stop = AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        let toggler = scope.spawn(|| {
            let mem = &mut session.process.memory;
            let unpatch = PatchDelta {
                patch: Vec::new(),
                unpatch: toggled.clone(),
                ..PatchDelta::default()
            };
            let patch = PatchDelta {
                patch: toggled.clone(),
                unpatch: Vec::new(),
                ..PatchDelta::default()
            };
            while !stop.load(Ordering::Relaxed) {
                runtime.repatch(mem, &unpatch).expect("repatch");
                runtime.repatch(mem, &patch).expect("repatch");
            }
        });
        let r = engine
            .run(&World::new(ranks, CostModel::default()))
            .expect("runs");
        stop.store(true, Ordering::Relaxed);
        toggler.join().expect("toggler exits");
        r
    });
    let stats = runtime.stats();
    (report.events, stats.stale_dispatches, sink.events())
}

fn main() {
    let ranks = 4;
    println!("dispatch fast path under live repatching ({ranks} ranks)\n");
    let (events_a, stale_a, log_a) = run_once(ranks);
    let (_, stale_b, log_b) = run_once(ranks);

    assert_eq!(events_a as usize, log_a.len(), "no lost events");
    assert_eq!(log_a, log_b, "merged traces identical across runs");
    assert!(log_a.windows(2).all(|w| w[0].rank <= w[1].rank));

    println!(
        "events dispatched:   {events_a} (all {} in the sink)",
        log_a.len()
    );
    println!("stale tolerated:     run A {stale_a}, run B {stale_b} (interleaving-dependent)");
    println!("merged trace:        rank-major, per-rank sequence order");
    for rank in 0..ranks {
        let n = log_a.iter().filter(|e| e.rank == rank).count();
        println!("  rank {rank}: {n} events");
    }
    println!("\ndeterministic merge across runs ✓");
}
