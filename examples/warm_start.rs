//! Cross-run instrumentation-profile persistence: two sessions, one
//! lesson learned once.
//!
//! **Session 1 (cold)** runs the in-flight trim+grow loop from a coarse
//! IC: a hot-small function is trimmed, the imbalance-expansion policy
//! descends the rank-skewed subtree one call-tree level per epoch, and
//! the converged state — IC in packed-ID form, drop records, cost
//! samples, efficiency summary — is saved as an instrumentation
//! profile.
//!
//! **Session 2 (warm)** starts a *fresh* session over the same binary
//! with `ProfileSource::Path`: the profile is loaded, prior drops are
//! pre-trimmed and the converged IC pre-grown in one repatch batch
//! before epoch 0, and the run converges in strictly fewer epochs with
//! strictly lower cumulative `T_adapt`.
//!
//! The demo also exercises the robustness contract: the saved bytes
//! round-trip (save → load → re-save is byte-identical), and a corrupt
//! profile degrades to a cold start with the reason recorded in the
//! adaptation log — never a panic.
//!
//! ```text
//! cargo run --release --example warm_start
//! ```
//!
//! Environment: `CAPI_EPOCHS` (default 6; values below 5 are raised to
//! 5 — the cold run must have room to converge for the comparison to
//! mean anything) and `CAPI_PROFILE_PATH` (where the profile lives;
//! default: a file under the system temp directory — the
//! corrupt-profile stage only runs against the temp default, never
//! against a user-provided path).

use capi::{
    profile_source_from_env, AdaptiveRunBuilder, InstrumentationConfig, ProfileSource, Workflow,
};
use capi_appmodel::{LinkTarget, MpiCall, ProgramBuilder, SourceProgram};
use capi_dyncapi::ToolChoice;
use capi_objmodel::CompileOptions;
use capi_persist::InstrumentationProfile;

fn env_epochs() -> usize {
    std::env::var("CAPI_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(6)
        // The cold run converges around epoch 4 on this workload; fewer
        // epochs would make `first_converged_at` None and the demo
        // comparison meaningless.
        .max(5)
}

/// A step loop with a hot-small function in the IC and a two-level
/// skewed subtree below a phase — the cold run needs several epochs
/// (and repatch batches) to find what the warm run starts with.
fn program() -> SourceProgram {
    let mut b = ProgramBuilder::new("warmdemo");
    b.unit("m.cc", LinkTarget::Executable);
    b.function("main")
        .main()
        .statements(50)
        .instructions(400)
        .cost(1_000)
        .calls("MPI_Init", 1)
        .calls("step", 24)
        .calls("MPI_Finalize", 1)
        .finish();
    b.function("step")
        .statements(40)
        .instructions(300)
        .cost(500)
        .calls("tiny_hot", 3_000)
        .calls("skewed_phase", 1)
        .calls("MPI_Allreduce", 1)
        .finish();
    b.function("tiny_hot")
        .statements(20)
        .instructions(200)
        .cost(3)
        .finish();
    b.function("skewed_phase")
        .statements(30)
        .instructions(300)
        .cost(200)
        .calls("skew_mid", 1)
        .finish();
    b.function("skew_mid")
        .statements(30)
        .instructions(300)
        .cost(200)
        .calls("skew_kernel", 40)
        .finish();
    b.function("skew_kernel")
        .statements(60)
        .instructions(600)
        .cost(2_000)
        .imbalance(200)
        .loop_depth(2)
        .finish();
    b.function("MPI_Init")
        .statements(1)
        .instructions(8)
        .cost(0)
        .mpi(MpiCall::Init)
        .finish();
    b.function("MPI_Allreduce")
        .statements(1)
        .instructions(8)
        .cost(0)
        .mpi(MpiCall::Allreduce { bytes: 64 })
        .finish();
    b.function("MPI_Finalize")
        .statements(1)
        .instructions(8)
        .cost(0)
        .mpi(MpiCall::Finalize)
        .finish();
    b.build().expect("demo program is well-formed")
}

fn main() {
    let epochs = env_epochs();
    let wf = Workflow::analyze(program(), CompileOptions::o2()).expect("compiles");
    let ic = InstrumentationConfig::from_names(["tiny_hot", "step", "skewed_phase"]);
    let runner = AdaptiveRunBuilder::new()
        .epochs(epochs)
        .budget_pct(40.0)
        .seed(0x5EED)
        .expansion(Default::default());
    // Honor CAPI_PROFILE_PATH the way the workflow layer exposes it;
    // fall back to a private temp file. The destructive corrupt-profile
    // stage only runs against the temp default — never against a path
    // the user pointed us at.
    let (path, user_supplied) = match profile_source_from_env() {
        ProfileSource::Path(p) => (p, true),
        _ => {
            let dir = std::env::temp_dir().join("capi-warm-start-demo");
            std::fs::create_dir_all(&dir).expect("temp dir");
            (dir.join("profile.json"), false)
        }
    };
    if user_supplied && path.exists() {
        eprintln!(
            "CAPI_PROFILE_PATH {} already exists — the two-session demo needs a fresh \
             path and refuses to overwrite yours",
            path.display()
        );
        std::process::exit(2);
    }
    if !user_supplied {
        std::fs::remove_file(&path).ok();
    }
    let runner = runner.profile(ProfileSource::Path(path.clone()));

    println!(
        "== session 1: cold start, profile written to {}\n",
        path.display()
    );
    let cold = wf
        .adaptive_run(&ic, ToolChoice::None, 4, &runner)
        .expect("cold run");
    assert!(!cold.warm_started);
    print!("{}", cold.log);

    // The artifact round-trips byte-identically through disk.
    let on_disk = std::fs::read_to_string(&path).expect("profile exists");
    let reloaded = InstrumentationProfile::load(&path).expect("profile parses");
    assert_eq!(
        reloaded.to_json_string(),
        on_disk,
        "save/load/re-save bytes match"
    );
    println!(
        "\nprofile: {} functions, {} objects, {} bytes (round-trip byte-identical)\n",
        reloaded.functions.len(),
        reloaded.objects.len(),
        on_disk.len()
    );

    println!("== session 2: warm start from the saved profile\n");
    let warm = wf
        .adaptive_run(&ic, ToolChoice::None, 4, &runner)
        .expect("warm run");
    assert!(warm.warm_started);
    print!("{}", warm.log);

    // Time-to-converged-IC: first convergence, so a late re-inclusion
    // probe experiment (which both runs play equally) doesn't obscure
    // the comparison.
    let cold_conv = cold.first_converged_at.expect("cold converges");
    let warm_conv = warm.first_converged_at.expect("warm converges");
    assert!(
        warm_conv < cold_conv,
        "warm must converge strictly earlier ({warm_conv} vs {cold_conv})"
    );
    assert!(warm.adaptive.adapt_ns < cold.adaptive.adapt_ns);
    // Both runs discovered the same lesson: the skewed subtree is
    // instrumented, the hot-small noise is not (modulo whatever the
    // final epoch's probe experiment happens to be trying).
    assert!(warm.profile.active_raw_ids() == cold.profile.active_raw_ids());
    assert!(warm.final_ic.contains("skew_kernel"));
    println!(
        "\nwarm converged at epoch {warm_conv} (cold: {cold_conv}); \
         T_adapt {} vs {} ns; validated active sets identical.",
        warm.adaptive.adapt_ns, cold.adaptive.adapt_ns
    );

    // Corrupt the profile: the next run must degrade to a cold start
    // and say why — never panic, never alias stale IDs. Skipped when
    // the user supplied the path: their profile is not ours to destroy.
    if user_supplied {
        println!(
            "\nprofile kept at {} (corrupt-profile stage skipped for user-supplied paths)",
            path.display()
        );
        return;
    }
    std::fs::write(&path, &on_disk[..on_disk.len() / 2]).expect("truncate");
    let fallback = wf
        .adaptive_run(&ic, ToolChoice::None, 4, &runner)
        .expect("fallback run");
    assert!(!fallback.warm_started);
    let reason = fallback
        .log
        .lines()
        .find(|l| l.contains("warm start unavailable"))
        .expect("fallback reason logged");
    println!("\ncorrupt profile degraded cleanly: {}", reason.trim());
    std::fs::remove_file(&path).ok();
}
