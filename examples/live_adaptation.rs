//! In-flight adaptation, live: the Fig. 1 refinement loop converging
//! **inside one run** — zero restarts, zero rebuilds.
//!
//! The session starts from the paper's `mpi` IC, and the `capi-adapt`
//! controller re-patches sleds at every epoch boundary: hot-small
//! functions and the worst cost/benefit offenders are unpatched until
//! the measured instrumentation overhead fits the budget; dropped
//! functions are periodically probed back so the selection can recover.
//!
//! The program is run **twice** with the same seed and budget to
//! demonstrate the determinism contract: the adaptation logs are
//! byte-identical and the virtual clocks agree exactly.
//!
//! ```text
//! cargo run --release --example live_adaptation
//! ```
//!
//! Environment: `CAPI_EPOCHS` (default 6), `CAPI_BUDGET_PCT`
//! (default 5.0) — zero/invalid values fall back to the defaults.

use capi::{AdaptiveRunBuilder, InFlightOutcome, Workflow};
use capi_dyncapi::ToolChoice;
use capi_objmodel::CompileOptions;
use capi_workloads::{openfoam, OpenFoamParams, PAPER_SPECS};

fn env_epochs() -> usize {
    std::env::var("CAPI_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(6)
}

fn env_budget_pct() -> f64 {
    std::env::var("CAPI_BUDGET_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|&b| b > 0.0 && b.is_finite())
        .unwrap_or(5.0)
}

fn run_once(workflow: &Workflow, runner: &AdaptiveRunBuilder) -> InFlightOutcome {
    let ic = workflow
        .select_ic(PAPER_SPECS[0].source)
        .expect("mpi IC")
        .ic;
    workflow
        .adaptive_run(&ic, ToolChoice::Talp(Default::default()), 4, runner)
        .expect("in-flight run")
}

fn main() {
    let epochs = env_epochs();
    let budget_pct = env_budget_pct();
    let runner = AdaptiveRunBuilder::new()
        .epochs(epochs)
        .budget_pct(budget_pct)
        .seed(0x5EED);
    let program = openfoam(&OpenFoamParams {
        scale: 12_000,
        time_steps: 24,
        ..Default::default()
    });
    let workflow = Workflow::analyze(program, CompileOptions::o2()).expect("analyze");
    println!(
        "one session, {} epochs, overhead budget {:.2}%\n",
        epochs, budget_pct
    );

    let first = run_once(&workflow, &runner);
    println!("epoch  overhead%  active  events      Δpatch  Δunpatch");
    for r in &first.adaptive.records {
        println!(
            "{:>5}  {:>9.3}  {:>6}  {:>10}  {:>6}  {:>8}",
            r.epoch, r.overhead_pct, r.active_after, r.events, r.sleds_patched, r.sleds_unpatched
        );
    }
    println!("\nadaptation log:");
    print!("{}", first.log);

    let last = first
        .adaptive
        .records
        .last()
        .expect("at least one epoch ran");
    if last.overhead_pct > budget_pct {
        // The pinned spine puts a floor on achievable overhead; a very
        // tight user-supplied budget can sit below it. Report instead
        // of crashing — but the stock configuration must converge.
        if std::env::var("CAPI_BUDGET_PCT").is_ok() {
            println!(
                "\nbudget {:.3}% is below the achievable floor ({:.3}% reached after trimming \
                 everything unpinned) — try a larger CAPI_BUDGET_PCT",
                budget_pct, last.overhead_pct
            );
        } else {
            panic!(
                "must converge within the default budget: {:.3}% > {:.2}%",
                last.overhead_pct, budget_pct
            );
        }
    }
    assert_eq!(first.restarts, 0);
    assert_eq!(first.rebuilds, 0);

    // Determinism contract: same seed + budget → byte-identical logs
    // and identical virtual clocks.
    let second = run_once(&workflow, &runner);
    assert_eq!(first.log, second.log, "adaptation logs are byte-identical");
    assert_eq!(first.adaptive.per_rank_ns, second.adaptive.per_rank_ns);
    assert_eq!(first.adaptive.events, second.adaptive.events);

    println!(
        "\nconverged {} | final IC {} functions | overhead {:.3}% vs budget {:.2}%",
        match first.converged_at {
            Some(e) => format!("at epoch {e}"),
            None => "(still trimming)".to_string(),
        },
        first.final_ic.len(),
        last.overhead_pct,
        budget_pct
    );
    println!(
        "T_init {:.2} ms | T_adapt {:.2} ms | run {:.2} ms | restarts: {} | rebuilds: {}",
        first.adaptive.init_ns as f64 / 1e6,
        first.adaptive.adapt_ns as f64 / 1e6,
        first.adaptive.run_ns as f64 / 1e6,
        first.restarts,
        first.rebuilds
    );
    println!("second run with the same seed/budget: logs byte-identical ✓");
}
