//! The paper's core usability claim, live: iterative IC refinement
//! **without recompilation** (Fig. 1 + §VII-A).
//!
//! Iteration 1 starts from the kernels spec; each following iteration
//! consults the measured profile (scorep-score style), excludes the
//! hottest small functions, and re-runs — paying only startup patching,
//! never a rebuild.
//!
//! ```text
//! cargo run --release --example adaptive_refinement
//! ```

use capi::{InstrumentationConfig, Workflow};
use capi_dyncapi::ToolChoice;
use capi_objmodel::CompileOptions;
use capi_scorep::score::{score_profile, ScoreParams};
use capi_workloads::{openfoam, OpenFoamParams, PAPER_SPECS};

fn main() {
    let program = openfoam(&OpenFoamParams {
        scale: 12_000,
        ..Default::default()
    });
    let workflow = Workflow::analyze(program, CompileOptions::o2()).expect("analyze");
    let recompile_min = workflow.recompile_estimate_ns() as f64 / 60e9;
    println!("static-mode cost per adjustment would be ≈{recompile_min:.1} min of recompilation\n");

    let mut ic: InstrumentationConfig = workflow
        .select_ic(PAPER_SPECS[2].source)
        .expect("kernels IC")
        .ic;

    for iteration in 1..=3 {
        let session = capi::dynamic_session(
            &workflow.binary,
            &ic,
            ToolChoice::Scorep(Default::default()),
            4,
        )
        .expect("session");
        let out = session.run().expect("run");
        println!(
            "iteration {iteration}: {} functions instrumented | patch-time {:.2} ms | run {:.2} ms | {} events",
            ic.len(),
            out.init_ns as f64 / 1e6,
            out.run.total_ns as f64 / 1e6,
            out.run.events
        );

        // Adjust: consult the profile, drop hot+small regions.
        let scorep = session.scorep.as_ref().expect("scorep configured");
        let report = score_profile(
            &scorep.merged(),
            &scorep.region_names(),
            &ScoreParams {
                hot_visits: 2_000,
                ..Default::default()
            },
        );
        let mut dropped = 0;
        for row in report.rows.iter().filter(|r| r.excluded) {
            if ic.remove(&row.name) {
                dropped += 1;
            }
        }
        println!("  adjust: dropped {dropped} hot small functions (scorep-score)");
        if dropped == 0 {
            println!("  IC converged — refinement done.");
            break;
        }
    }
    println!("\ntotal rebuilds needed: 0 (the paper's static workflow would have paid one per iteration)");
}
