//! The paper's core usability claim, two ways.
//!
//! **Restart-per-iteration** (the paper's Fig. 3 runtime column): each
//! refinement iteration starts a fresh session, consults the measured
//! profile (scorep-score style), drops hot+small functions and re-runs —
//! paying startup patching per iteration, but never a rebuild.
//!
//! **In-flight** (the `capi-adapt` controller): ONE session; the same
//! refinement happens at epoch boundaries while the program runs —
//! zero restarts on top of zero rebuilds.
//!
//! The example runs both modes from the same starting IC and prints a
//! side-by-side comparison of turnaround, sessions and rebuilds.
//!
//! ```text
//! cargo run --release --example adaptive_refinement
//! ```

use capi::{AdaptiveRunBuilder, InstrumentationConfig, Workflow};
use capi_dyncapi::ToolChoice;
use capi_objmodel::CompileOptions;
use capi_scorep::score::{score_profile, ScoreParams};
use capi_workloads::{openfoam, OpenFoamParams, PAPER_SPECS};

fn main() {
    let program = openfoam(&OpenFoamParams {
        scale: 12_000,
        time_steps: 24,
        ..Default::default()
    });
    let workflow = Workflow::analyze(program, CompileOptions::o2()).expect("analyze");
    let recompile_min = workflow.recompile_estimate_ns() as f64 / 60e9;
    println!("static-mode cost per adjustment would be ≈{recompile_min:.1} min of recompilation\n");

    let starting_ic: InstrumentationConfig = workflow
        .select_ic(PAPER_SPECS[0].source)
        .expect("mpi IC")
        .ic;

    // ---- Mode A: restart per iteration. ---------------------------------
    println!("== restart-per-iteration (one session per adjustment) ==");
    let mut ic = starting_ic.clone();
    let mut restart_sessions = 0u32;
    let mut restart_turnaround_ns = 0u64;
    for iteration in 1..=3 {
        let session = capi::dynamic_session(
            &workflow.binary,
            &ic,
            ToolChoice::Scorep(Default::default()),
            4,
        )
        .expect("session");
        let out = session.run().expect("run");
        restart_sessions += 1;
        restart_turnaround_ns += out.total_ns;
        println!(
            "iteration {iteration}: {} functions instrumented | patch-time {:.2} ms | run {:.2} ms | {} events",
            ic.len(),
            out.init_ns as f64 / 1e6,
            out.run.total_ns as f64 / 1e6,
            out.run.events
        );

        // Adjust: consult the profile, drop hot+small regions.
        let scorep = session.scorep.as_ref().expect("scorep configured");
        let report = score_profile(
            &scorep.merged(),
            &scorep.region_names(),
            &ScoreParams {
                hot_visits: 2_000,
                ..Default::default()
            },
        );
        let mut dropped = 0;
        for row in report.rows.iter().filter(|r| r.excluded) {
            if ic.remove(&row.name) {
                dropped += 1;
            }
        }
        println!("  adjust: dropped {dropped} hot small functions (scorep-score)");
        if dropped == 0 {
            println!("  IC converged — refinement done.");
            break;
        }
    }

    // ---- Mode B: in-flight (single session, epoch controller). ----------
    println!("\n== in-flight (one session, controller repatches mid-run) ==");
    let outcome = workflow
        .adaptive_run(
            &starting_ic,
            ToolChoice::Talp(Default::default()),
            4,
            &AdaptiveRunBuilder::new()
                .epochs(6)
                .budget_pct(5.0)
                .seed(0x5EED),
        )
        .expect("in-flight run");
    for r in &outcome.adaptive.records {
        println!(
            "epoch {}: overhead {:.3}% | active {} | -{} sleds +{} sleds",
            r.epoch, r.overhead_pct, r.active_after, r.sleds_unpatched, r.sleds_patched
        );
    }

    // ---- Side by side. --------------------------------------------------
    let inflight_turnaround_ns = outcome.adaptive.total_ns;
    println!("\n== side by side ==");
    println!("                      restart-mode     in-flight");
    println!("sessions started      {restart_sessions:>12}  {:>12}", 1);
    println!(
        "mid-run restarts      {:>12}  {:>12}",
        restart_sessions.saturating_sub(1),
        outcome.adaptive.restarts
    );
    println!("rebuilds              {:>12}  {:>12}", 0, outcome.rebuilds);
    println!(
        "total turnaround      {:>9.2} ms  {:>9.2} ms",
        restart_turnaround_ns as f64 / 1e6,
        inflight_turnaround_ns as f64 / 1e6
    );
    println!(
        "T_adapt               {:>12}  {:>9.2} ms",
        "-",
        outcome.adaptive.adapt_ns as f64 / 1e6
    );
    println!(
        "\n(static instrumentation would have paid {restart_sessions} × {recompile_min:.1} min of rebuilds on top)"
    );
}
