//! TALP-driven expansion, live: the controller *grows* instrumentation
//! below a load-imbalanced region — the companion direction to the
//! overhead-budget trimming of `examples/live_adaptation.rs`.
//!
//! The application has two phases per time step: one perfectly
//! balanced, one whose kernel skews 200% across ranks. The initial IC
//! covers the phases but not the kernels, so a trim-only session can
//! never learn *where* the imbalance lives. With expansion enabled the
//! controller watches each region's per-epoch load balance, descends
//! the call tree below `skewed_phase`, and re-includes `skew_kernel` —
//! while the expansion cap keeps measured overhead inside the same
//! budget. The balanced phase's kernel stays uninstrumented: growth is
//! targeted, not indiscriminate.
//!
//! ```text
//! cargo run --release --example imbalance_expansion
//! ```
//!
//! Environment: `CAPI_EPOCHS` (default 6), `CAPI_BUDGET_PCT`
//! (default 15.0) — zero/invalid values fall back to the defaults.

use capi::{AdaptiveRunBuilder, ExpansionOptions, InstrumentationConfig, Workflow};
use capi_appmodel::{LinkTarget, MpiCall, ProgramBuilder, SourceProgram};
use capi_dyncapi::ToolChoice;
use capi_objmodel::CompileOptions;

fn env_epochs() -> usize {
    std::env::var("CAPI_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(6)
}

fn env_budget_pct() -> f64 {
    std::env::var("CAPI_BUDGET_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|&b| b > 0.0 && b.is_finite())
        .unwrap_or(15.0)
}

fn program() -> SourceProgram {
    let mut b = ProgramBuilder::new("expansion-demo");
    b.unit("m.cc", LinkTarget::Executable);
    b.function("main")
        .main()
        .statements(50)
        .instructions(400)
        .cost(1_000)
        .calls("MPI_Init", 1)
        .calls("step", 24)
        .calls("MPI_Finalize", 1)
        .finish();
    b.function("step")
        .statements(40)
        .instructions(300)
        .cost(500)
        .calls("balanced_phase", 1)
        .calls("skewed_phase", 1)
        .calls("MPI_Allreduce", 1)
        .finish();
    b.function("balanced_phase")
        .statements(30)
        .instructions(300)
        .cost(200)
        .calls("bal_kernel", 40)
        .finish();
    b.function("skewed_phase")
        .statements(30)
        .instructions(300)
        .cost(200)
        .calls("skew_kernel", 40)
        .finish();
    b.function("bal_kernel")
        .statements(60)
        .instructions(600)
        .cost(2_000)
        .loop_depth(2)
        .finish();
    b.function("skew_kernel")
        .statements(60)
        .instructions(600)
        .cost(2_000)
        .imbalance(200)
        .loop_depth(2)
        .finish();
    b.function("MPI_Init")
        .statements(1)
        .instructions(8)
        .cost(0)
        .mpi(MpiCall::Init)
        .finish();
    b.function("MPI_Allreduce")
        .statements(1)
        .instructions(8)
        .cost(0)
        .mpi(MpiCall::Allreduce { bytes: 64 })
        .finish();
    b.function("MPI_Finalize")
        .statements(1)
        .instructions(8)
        .cost(0)
        .mpi(MpiCall::Finalize)
        .finish();
    b.build().expect("demo program is well-formed")
}

fn main() {
    let epochs = env_epochs();
    let budget_pct = env_budget_pct();
    let trim_runner = AdaptiveRunBuilder::new()
        .epochs(epochs)
        .budget_pct(budget_pct)
        .seed(0x7A1B);
    let grow_runner = trim_runner.clone().expansion(ExpansionOptions::default());
    let workflow = Workflow::analyze(program(), CompileOptions::o2()).expect("analyze");
    let ic = InstrumentationConfig::from_names(["step", "balanced_phase", "skewed_phase"]);
    println!(
        "initial IC: {} functions (phases only) | {} epochs | budget {:.2}%\n",
        ic.len(),
        epochs,
        budget_pct
    );

    let trim = workflow
        .adaptive_run(&ic, ToolChoice::None, 4, &trim_runner)
        .expect("trim-only run");
    let grow = workflow
        .adaptive_run(&ic, ToolChoice::None, 4, &grow_runner)
        .expect("expansion run");

    println!("adaptation log (expansion mode):");
    print!("{}", grow.log);
    println!("\nper-epoch efficiency trajectory:");
    print!("{}", grow.adaptive.efficiency.render());

    // Budget-only trimming can only shrink: the skewed kernel stays
    // invisible. Expansion grows the IC exactly where efficiency is
    // lost — and nowhere else.
    assert!(!trim.final_ic.contains("skew_kernel"));
    assert!(grow.final_ic.contains("skew_kernel"), "subtree re-included");
    assert!(
        !grow.final_ic.contains("bal_kernel"),
        "balanced subtree stays out"
    );
    let last = grow.adaptive.records.last().expect("epochs ran");
    assert!(
        last.overhead_pct <= budget_pct,
        "growth stayed within budget: {:.3}% > {:.2}%",
        last.overhead_pct,
        budget_pct
    );
    assert_eq!(grow.restarts, 0);
    assert_eq!(grow.rebuilds, 0);

    // Determinism contract, expansion included.
    let again = workflow
        .adaptive_run(&ic, ToolChoice::None, 4, &grow_runner)
        .expect("second expansion run");
    assert_eq!(grow.log, again.log, "adaptation logs are byte-identical");
    assert_eq!(grow.adaptive.per_rank_ns, again.adaptive.per_rank_ns);

    println!(
        "\ntrim-only final IC: {} functions (skew_kernel absent)",
        trim.final_ic.len()
    );
    println!(
        "expansion final IC: {} functions (skew_kernel present, bal_kernel absent)",
        grow.final_ic.len()
    );
    println!(
        "final overhead {:.3}% vs budget {:.2}% | restarts 0 | rebuilds 0",
        last.overhead_pct, budget_pct
    );
    println!("second run with the same seed/budget: logs byte-identical ✓");
}
