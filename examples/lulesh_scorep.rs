//! Profile the synthetic LULESH with Score-P through the kernels IC,
//! then use `scorep-score` to propose an initial filter — the §II-B
//! workflow CaPI improves upon.
//!
//! ```text
//! cargo run --release --example lulesh_scorep
//! ```

use capi::Workflow;
use capi_dyncapi::ToolChoice;
use capi_objmodel::CompileOptions;
use capi_scorep::score::{score_profile, ScoreParams};
use capi_workloads::{lulesh, LuleshParams, PAPER_SPECS};

fn main() {
    let workflow =
        Workflow::analyze(lulesh(&LuleshParams::default()), CompileOptions::o3()).expect("analyze");
    println!(
        "LULESH: {} call-graph nodes (paper: 3,360)",
        workflow.graph.len()
    );

    // The paper's `kernels` spec.
    let ic = workflow
        .select_ic(PAPER_SPECS[2].source)
        .expect("kernels IC");
    println!(
        "kernels IC: {} functions ({} removed as inlined, {} callers added)",
        ic.ic.len(),
        ic.compensation.removed_names.len(),
        ic.compensation.added
    );

    let session = capi::dynamic_session(
        &workflow.binary,
        &ic.ic,
        ToolChoice::Scorep(Default::default()),
        8,
    )
    .expect("session");
    let out = session.run().expect("run");
    println!(
        "profiled {} events in {:.2} virtual ms",
        out.run.events,
        out.total_ns as f64 / 1e6
    );

    // Top regions by inclusive time.
    let scorep = session.scorep.as_ref().expect("scorep configured");
    let merged = scorep.merged();
    let names = scorep.region_names();
    let mut rows: Vec<_> = merged.per_region.iter().collect();
    rows.sort_by_key(|(_, t)| std::cmp::Reverse(t.inclusive_ns));
    println!("\ntop regions (inclusive time, all ranks):");
    for (id, t) in rows.iter().take(8) {
        println!(
            "  {:<40} visits {:>8}  incl {:>10.3} ms",
            names[id.0 as usize],
            t.visits,
            t.inclusive_ns as f64 / 1e6
        );
    }

    // scorep-score: propose an initial EXCLUDE filter for hot+small fns.
    let report = score_profile(&merged, &names, &ScoreParams::default());
    println!(
        "\nscorep-score: estimated overhead {:.3} ms → {:.3} ms after filtering",
        report.total_overhead_ns as f64 / 1e6,
        report.remaining_overhead_ns as f64 / 1e6
    );
    let excluded: Vec<&str> = report
        .rows
        .iter()
        .filter(|r| r.excluded)
        .map(|r| r.name.as_str())
        .collect();
    println!("proposed EXCLUDEs: {excluded:?}");
}
