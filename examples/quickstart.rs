//! Quickstart: the full CaPI workflow on a 21-function miniapp.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the paper's Fig. 1 loop once: build the program model, construct
//! the MetaCG call graph, run a selection spec, post-process the IC
//! (inlining compensation), instrument dynamically via DynCaPI/XRay, run
//! under TALP on 4 simulated ranks, and print the region report.

use capi::Workflow;
use capi_dyncapi::ToolChoice;
use capi_objmodel::CompileOptions;
use capi_talp::render_report;
use capi_workloads::quickstart_app;

fn main() {
    // 1. Analyze: program → call graph + compiled binary (one build!).
    let program = quickstart_app(50);
    let workflow = Workflow::analyze(program, CompileOptions::o2()).expect("analyze");
    println!(
        "call graph: {} nodes, {} edges",
        workflow.graph.len(),
        workflow.graph.num_edges()
    );

    // 2. Select: compute kernels that sit on loops, skip system headers.
    let spec = r#"
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
k = flops(">=", 10, loopDepth(">=", 1, %%))
subtract(onCallPathTo(%k), %excluded)
"#;
    let ic = workflow.select_ic(spec).expect("selection");
    println!(
        "selection: {} pre → {} post (+{} compensated callers) in {:?}",
        ic.compensation.selected_pre,
        ic.compensation.selected_post,
        ic.compensation.added,
        ic.duration
    );
    println!(
        "IC (Score-P filter format):\n{}",
        ic.ic.to_scorep_filter().to_text()
    );

    // 3+4. Instrument dynamically and measure with TALP.
    let outcome = workflow
        .measure(&ic.ic, ToolChoice::Talp(Default::default()), 4)
        .expect("measure");
    println!(
        "run: T_init {:.3} ms, T_total {:.3} ms, {} instrumentation events",
        outcome.run.init_ns as f64 / 1e6,
        outcome.run.total_ns as f64 / 1e6,
        outcome.run.run.events
    );

    // 5. The TALP report (printed at MPI_Finalize time).
    let session = capi::dynamic_session(
        &workflow.binary,
        &ic.ic,
        ToolChoice::Talp(Default::default()),
        4,
    )
    .expect("session");
    session.run().expect("run");
    let report = session
        .talp
        .as_ref()
        .expect("talp configured")
        .final_report()
        .expect("finalize ran");
    println!("{}", render_report(&report, Some(6)));
}
